package service

// This file is the service's cluster-facing surface: everything the
// internal/cluster fabric layer needs to route jobs across nodes without
// reaching into scheduler internals. The service stays oblivious to
// membership and transports — the cluster package composes these hooks into
// the consistent-hash dispatch, replication, and steal protocols
// (DESIGN.md §15).

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrRecordCorrupt is the exported alias of the durable-record validation
// error: DecodeRecord wraps every structural failure (bad magic, length
// mismatch, CRC, truncated JSON) in it, so a replication receiver can treat
// "torn frame" as one condition.
var ErrRecordCorrupt = errDurableCorrupt

// CacheKey derives the content address of a config (fingerprint plus the
// observability variant). cacheable=false means the config holds function
// values and has no canonical identity: such jobs are never routed, cached,
// or coalesced — they run on the node that received them.
func CacheKey(cfg *sim.Config) (key string, cacheable bool) {
	return cacheKey(cfg)
}

// EncodeRecord frames a completed result as a durable EMCR record — the
// exact byte format the on-disk cache uses, reused verbatim as the
// replication and peer-fetch wire format (a record is valid anywhere).
func EncodeRecord(key string, res *sim.Result) ([]byte, error) {
	return encodeDurableRecord(&durableRecord{Key: key, Result: res})
}

// DecodeRecord validates an EMCR frame end to end (magic, version, length,
// CRC, payload shape) and returns its key and Result. Every failure mode
// wraps ErrRecordCorrupt.
func DecodeRecord(frame []byte) (string, *sim.Result, error) {
	rec, err := decodeDurableRecord(frame)
	if err != nil {
		return "", nil, err
	}
	return rec.Key, rec.Result, nil
}

// PeekResult returns the cached result for key without touching hit/miss
// counters, LRU recency, or failpoints — the peer-fetch read path.
func (s *Service) PeekResult(key string) (*sim.Result, bool) {
	return s.cache.peek(key)
}

// SeedResult installs a replicated result into the cache, writing through to
// the durable store when one is attached. Results are content-addressed and
// immutable, so overwriting an existing entry with a replica is benign (the
// bytes are identical by determinism).
func (s *Service) SeedResult(key string, res *sim.Result) {
	s.cache.put(key, res)
}

// QueueDepth is the number of queued (not yet running) jobs — the signal the
// steal protocol uses to find skewed nodes.
func (s *Service) QueueDepth() int {
	return int(s.queued.Load())
}

// ResultKeys lists every cached result key, sorted — the enumeration the
// anti-entropy digest is computed over. The in-memory cache mirrors the
// durable store (boot loads seed it, puts write through), so this is the
// node's durable record set without touching disk.
func (s *Service) ResultKeys() []string {
	return s.cache.keys()
}

// SetOnDone installs the completion hook: fn is called from the worker
// goroutine after an actual simulation completes and its result is cached
// (cache hits and replica seeds do not fire it). The cluster layer uses it
// to replicate fresh results to peers; fn must be quick (enqueue, not send).
// Install before the first submission; a nil fn clears the hook.
func (s *Service) SetOnDone(fn func(key string, res *sim.Result)) {
	if fn == nil {
		s.onDone.Store(nil)
		return
	}
	s.onDone.Store(&fn)
}

// SetClusterStats installs the per-node stats hook: Stats() calls fn with
// the locally computed snapshot and attaches its return as Stats.Nodes. The
// indirection keeps the service → cluster dependency one-way (the cluster
// package imports service, never the reverse).
func (s *Service) SetClusterStats(fn func(local *Stats) []NodeStat) {
	if fn == nil {
		s.clusterStats.Store(nil)
		return
	}
	s.clusterStats.Store(&fn)
}

// NewRoutedJob registers a job whose simulation will run on another node:
// it appears in this node's job table (listings, status polls, spans) but is
// never queued locally — the cluster layer drives it to a terminal state via
// StartRouted/FinishRouted. The same terminal fast paths as Submit apply:
// a cached result returns an already-done job (fresh=false), an identical
// in-flight submission coalesces onto the existing job (fresh=false). Only
// a fresh=true return obligates the caller to finish the job.
func (s *Service) NewRoutedJob(client, key string, cfg sim.Config) (j *Job, fresh bool, err error) {
	if client == "" {
		client = "default"
	}
	if err := fpQueueAdmit.Err(); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	s.seq++
	id := fmt.Sprintf("j%d", s.seq)
	if res, ok := s.cache.get(key); ok {
		j := newJob(id, key, client, shardOf(key, len(s.queues)), true, cfg, s.rec)
		j.cached = true
		s.jobs[id] = j
		s.order = append(s.order, j)
		s.submitted.Add(1)
		s.mu.Unlock()
		j.finalize(StateDone, res, nil)
		s.completed.Add(1)
		s.publish()
		return j, false, nil
	}
	if prev, ok := s.inflight[key]; ok {
		s.coalesced.Add(1)
		s.mu.Unlock()
		prev.recordCoalesce()
		s.publish()
		return prev, false, nil
	}
	j = newJob(id, key, client, shardOf(key, len(s.queues)), true, cfg, s.rec)
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.inflight[key] = j
	s.submitted.Add(1)
	s.mu.Unlock()
	s.publish()
	return j, true, nil
}

// StartRouted transitions a routed job to running (the remote dispatch is
// about to begin). It returns false when cancellation already arrived; the
// caller must then finish the job via FinishRouted with sim.ErrCancelled.
func (s *Service) StartRouted(j *Job) bool {
	return j.beginRunning()
}

// FinishRouted drives a routed job to its terminal state with a result
// computed elsewhere. A nil err caches the result locally (write-through)
// before completing, so followers coalesced onto j and later resubmissions
// hit the local cache.
func (s *Service) FinishRouted(j *Job, res *sim.Result, err error) {
	switch {
	case err == nil:
		s.cache.put(j.key, res)
		s.finishJob(j, StateDone, res, nil)
	case errors.Is(err, sim.ErrCancelled):
		s.finishJob(j, StateCancelled, res, err)
	default:
		s.dumpFlight(j, "failed", err)
		s.finishJob(j, StateFailed, nil, err)
	}
	s.publish()
}

// TakeQueued removes one queued job for delegation to a thief node, scanning
// shards deepest-first. Jobs that must not leave the node (uncacheable — no
// canonical identity to replicate under — or already cancel-requested) are
// not delegated; they are executed locally on a fresh goroutine instead, and
// the scan continues. ok=false means nothing stealable is queued.
func (s *Service) TakeQueued() (j *Job, ok bool) {
	for {
		deepest, depth := -1, 0
		for i, q := range s.queues {
			if d := q.len(); d > depth {
				deepest, depth = i, d
			}
		}
		if deepest < 0 {
			return nil, false
		}
		j, ok := s.queues[deepest].tryPop()
		if !ok {
			continue // raced with the shard's own worker; rescan
		}
		s.queued.Add(-1)
		if j.cacheable && !j.cancelRequested() {
			return j, true
		}
		go func(j *Job) {
			s.execute(j)
			s.publish()
		}(j)
	}
}

// TakeQueuedFor removes every queued job whose key the predicate accepts —
// the join-time handover donor path (the jobs' keys now belong to a fresh
// ring member). Uncacheable and cancel-requested jobs never leave the node;
// the predicate only sees cacheable live keys. The returned jobs are in the
// deterministic order the fair queues would have served them, shard by
// shard, and remain registered in the job table and inflight map so
// coalescing and status polls keep working while they are delegated.
func (s *Service) TakeQueuedFor(pred func(key string) bool) []*Job {
	var out []*Job
	for _, q := range s.queues {
		taken := q.takeMatching(func(j *Job) bool {
			return j.cacheable && !j.cancelRequested() && pred(j.key)
		})
		out = append(out, taken...)
	}
	if len(out) > 0 {
		s.queued.Add(-int64(len(out)))
		s.publish()
	}
	return out
}

// FinishStolen completes a job previously handed out by TakeQueued with the
// result the thief computed (or that arrived through replication first).
// Cancellation that raced in while the job was delegated wins: the job
// finalizes cancelled and the result is discarded (it is already cached).
func (s *Service) FinishStolen(j *Job, res *sim.Result) {
	if !j.beginRunning() {
		s.finishJob(j, StateCancelled, nil, sim.ErrCancelled)
		s.publish()
		return
	}
	if j.cacheable {
		s.cache.put(j.key, res)
	}
	s.finishJob(j, StateDone, res, nil)
	s.publish()
}

// ExecuteNow runs j to a terminal state on the calling goroutine — the
// re-dispatch path when a job's owner died and ownership fell back to this
// node, and the reclaim path when a thief never reported back. Safe to call
// on a job that StartRouted already marked running.
func (s *Service) ExecuteNow(j *Job) {
	s.execute(j)
	s.publish()
}

// NodeStat is one fabric node's row in Stats.Nodes (and the NODE table in
// emcctl top). The self row carries the full counter set; peer rows carry
// what the last heartbeat reported.
type NodeStat struct {
	Node  string `json:"node"`
	Addr  string `json:"addr,omitempty"`
	State string `json:"state"` // "self" | "alive" | "degraded" | "dead"

	Queued  int `json:"queued"`
	Running int `json:"running"`
	Hung    int `json:"hung"`

	// Syncing reports the node is mid anti-entropy backfill (self row from
	// the local flag, peer rows from the last heartbeat).
	Syncing bool `json:"syncing,omitempty"`

	// Cluster counters (self row only).
	Forwarded    uint64 `json:"forwarded,omitempty"`
	Redispatched uint64 `json:"redispatched,omitempty"`
	StolenIn     uint64 `json:"stolenIn,omitempty"`
	StolenOut    uint64 `json:"stolenOut,omitempty"`
	Replicated   uint64 `json:"replicated,omitempty"`
	ReplTorn     uint64 `json:"replTorn,omitempty"`
	Fetched      uint64 `json:"fetched,omitempty"`
	Backfilled   uint64 `json:"backfilled,omitempty"`
	HandedOut    uint64 `json:"handedOut,omitempty"`
	HandedIn     uint64 `json:"handedIn,omitempty"`
	BreakerTrips uint64 `json:"breakerTrips,omitempty"`

	// HeartbeatAgeMS is the age of the last successful heartbeat (peer rows;
	// -1 when never heard from).
	HeartbeatAgeMS int64 `json:"heartbeatAgeMS,omitempty"`
}
