package service

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func res(cycles uint64) *sim.Result { return &sim.Result{Cycles: cycles} }

// TestCacheLRUEviction: the least recently used entry is evicted first, and
// a get refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, nil)
	c.put("a", res(1))
	c.put("b", res(2))
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a should be cached")
	}
	c.put("c", res(3))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was refreshed and must survive")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c was just inserted and must survive")
	}
	hits, misses, evictions, entries := c.stats()
	if evictions != 1 || entries != 2 {
		t.Fatalf("want 1 eviction, 2 entries; got %d, %d", evictions, entries)
	}
	if hits != 3 || misses != 1 {
		t.Fatalf("want 3 hits, 1 miss; got %d, %d", hits, misses)
	}
}

// TestCachePutOverwrite: re-putting a key replaces the value without growing
// the cache.
func TestCachePutOverwrite(t *testing.T) {
	c := newResultCache(4, nil)
	c.put("k", res(1))
	c.put("k", res(2))
	got, ok := c.get("k")
	if !ok || got.Cycles != 2 {
		t.Fatalf("want overwritten value 2, got %v ok=%v", got, ok)
	}
	if _, _, _, entries := c.stats(); entries != 1 {
		t.Fatalf("overwrite must not grow the cache, entries=%d", entries)
	}
}

// TestCacheCapacityBound: the cache never exceeds its capacity.
func TestCacheCapacityBound(t *testing.T) {
	c := newResultCache(3, nil)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("k%d", i), res(uint64(i)))
	}
	_, _, evictions, entries := c.stats()
	if entries != 3 || evictions != 7 {
		t.Fatalf("want 3 entries, 7 evictions; got %d, %d", entries, evictions)
	}
	// The three most recent keys survive.
	for i := 7; i < 10; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d should be resident", i)
		}
	}
}
