package service

import "sync"

// fairQueue is one shard's job queue: FIFO per client, round-robin across
// clients, so one client's burst cannot starve another's single job.
// Capacity (backpressure) is enforced globally by the Service, not here.
//
// After close, pop keeps draining whatever is queued and returns ok=false
// only once the queue is empty — graceful drain pops jobs to completion,
// hard shutdown pops them with their cancel flag already set.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	fifos  map[string][]*Job // pending jobs per client
	ring   []string          // clients with pending work, rotation order
	rr     int               // next ring slot to serve
	n      int
	closed bool
}

func newFairQueue() *fairQueue {
	q := &fairQueue{fifos: map[string][]*Job{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job; it returns false when the queue is closed.
func (q *fairQueue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	fifo := append(q.fifos[j.client], j)
	q.fifos[j.client] = fifo
	if len(fifo) == 1 {
		// Client had no pending work: join the rotation.
		q.ring = append(q.ring, j.client)
	}
	q.n++
	q.cond.Signal()
	return true
}

// pop blocks until a job is available (round-robin over clients) or the
// queue is closed and empty.
func (q *fairQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	return q.popLocked(), true
}

// tryPop removes one job without blocking — the work-stealing donor path.
// ok=false means the shard is empty right now.
func (q *fairQueue) tryPop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return nil, false
	}
	return q.popLocked(), true
}

// popLocked extracts the next job round-robin over clients; q.mu held, n > 0.
func (q *fairQueue) popLocked() *Job {
	if q.rr >= len(q.ring) {
		q.rr = 0
	}
	client := q.ring[q.rr]
	fifo := q.fifos[client]
	j := fifo[0]
	fifo[0] = nil
	if len(fifo) == 1 {
		delete(q.fifos, client)
		// Remove the client from the ring; the next client slides into this
		// slot, so rr stays put.
		q.ring = append(q.ring[:q.rr], q.ring[q.rr+1:]...)
	} else {
		q.fifos[client] = fifo[1:]
		q.rr++
	}
	q.n--
	return j
}

// takeMatching removes and returns every queued job pred accepts, in the
// deterministic per-client-FIFO order the ring would have served them —
// the join-time handover donor path. The rotation cursor resets so the
// post-handover round-robin is a pure function of what remains.
func (q *fairQueue) takeMatching(pred func(*Job) bool) []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return nil
	}
	var taken []*Job
	newRing := q.ring[:0]
	for _, client := range q.ring {
		fifo := q.fifos[client]
		kept := fifo[:0]
		for _, j := range fifo {
			if pred(j) {
				taken = append(taken, j)
			} else {
				kept = append(kept, j)
			}
		}
		for i := len(kept); i < len(fifo); i++ {
			fifo[i] = nil
		}
		if len(kept) == 0 {
			delete(q.fifos, client)
		} else {
			q.fifos[client] = kept
			newRing = append(newRing, client)
		}
	}
	q.ring = newRing
	q.rr = 0
	q.n -= len(taken)
	return taken
}

// close wakes all waiters; see the type comment for drain semantics.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// len returns the number of queued jobs.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
