package service

import (
	"container/list"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Cache failpoints (see internal/fault): cache.get forces a miss on a key
// that is present (exercising the recompute path against the cached truth);
// cache.put drops an insert (a completed result that never becomes
// shareable — followers must still get their copy via the job itself).
var (
	fpCacheGet = fault.Register(fault.SiteCacheGet)
	fpCachePut = fault.Register(fault.SiteCachePut)
)

// resultCache is the content-addressed result cache: completed Results
// keyed by the job cache key (sim.Config.Fingerprint plus the observability
// variant, see cacheKey). Entries are immutable — the simulator produces a
// fresh Result per run and nobody mutates it afterwards — so hits share the
// pointer. Bounded LRU, optionally write-through to a durableStore.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	m         map[string]*list.Element
	lru       *list.List // front = most recently used
	store     *durableStore
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	res *sim.Result
}

func newResultCache(capacity int, store *durableStore) *resultCache {
	return &resultCache{cap: capacity, m: map[string]*list.Element{}, lru: list.New(), store: store}
}

// get returns the cached Result for key, bumping its recency.
func (c *resultCache) get(key string) (*sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok || fpCacheGet.Fire() {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// peek returns the entry for key without counters, recency, or failpoints —
// the cluster peer-fetch read path, invisible to cache stats.
func (c *resultCache) peek(key string) (*sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).res, true
}

// keys returns every cached key, sorted — the anti-entropy digest source.
func (c *resultCache) keys() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// put stores res under key, evicting the least recently used entry over
// capacity. Writes through to the durable store when one is attached.
func (c *resultCache) put(key string, res *sim.Result) {
	if fpCachePut.Fire() {
		return
	}
	c.insert(key, res, true)
}

// seed is put for boot-time durable loads: it fills the in-memory cache
// without echoing the entry back to the disk it just came from.
func (c *resultCache) seed(key string, res *sim.Result) {
	c.insert(key, res, false)
}

func (c *resultCache) insert(key string, res *sim.Result, persist bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
	} else {
		c.m[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	}
	if persist && c.store != nil {
		c.store.persist(key, res)
	}
	//simlint:leakok each iteration evicts one entry, strictly shrinking the list
	for c.cap > 0 && c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		evicted := back.Value.(*cacheEntry).key
		delete(c.m, evicted)
		c.evictions++
		if c.store != nil {
			c.store.remove(evicted)
		}
	}
}

// stats returns hit/miss/eviction counters and the current entry count.
func (c *resultCache) stats() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.lru.Len()
}
