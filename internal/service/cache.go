package service

import (
	"container/list"
	"sync"

	"repro/internal/sim"
)

// resultCache is the content-addressed result cache: completed Results
// keyed by the job cache key (sim.Config.Fingerprint plus the observability
// variant, see cacheKey). Entries are immutable — the simulator produces a
// fresh Result per run and nobody mutates it afterwards — so hits share the
// pointer. Bounded LRU.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	m         map[string]*list.Element
	lru       *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	res *sim.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, m: map[string]*list.Element{}, lru: list.New()}
}

// get returns the cached Result for key, bumping its recency.
func (c *resultCache) get(key string) (*sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting the least recently used entry over
// capacity.
func (c *resultCache) put(key string, res *sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.cap > 0 && c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns hit/miss/eviction counters and the current entry count.
func (c *resultCache) stats() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.lru.Len()
}
