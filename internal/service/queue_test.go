package service

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func qjob(id, client string) *Job {
	return newJob(id, "k-"+id, client, 0, true, sim.Config{}, nil)
}

// TestFairQueueRoundRobin: FIFO per client, round-robin across clients — a
// burst from one client cannot starve the others.
func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue()
	for _, j := range []*Job{
		qjob("a1", "alice"), qjob("a2", "alice"), qjob("a3", "alice"),
		qjob("b1", "bob"), qjob("c1", "carol"),
	} {
		if !q.push(j) {
			t.Fatalf("push %s failed", j.id)
		}
	}
	want := []string{"a1", "b1", "c1", "a2", "a3"}
	for i, w := range want {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty", i)
		}
		if j.id != w {
			t.Fatalf("pop %d: got %s, want %s", i, j.id, w)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue should be empty, len=%d", q.len())
	}
}

// TestFairQueueDrainAfterClose: close stops intake but pop drains what is
// already queued before reporting exhaustion.
func TestFairQueueDrainAfterClose(t *testing.T) {
	q := newFairQueue()
	q.push(qjob("a1", "alice"))
	q.push(qjob("a2", "alice"))
	q.close()
	if q.push(qjob("a3", "alice")) {
		t.Fatal("push after close must fail")
	}
	for _, w := range []string{"a1", "a2"} {
		j, ok := q.pop()
		if !ok || j.id != w {
			t.Fatalf("drain: got %v/%v, want %s", j, ok, w)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed empty queue must report exhaustion")
	}
}

// TestFairQueuePopUnblocksOnClose: a blocked pop returns once the queue
// closes.
func TestFairQueuePopUnblocksOnClose(t *testing.T) {
	q := newFairQueue()
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	q.close()
	if ok := <-done; ok {
		t.Fatal("pop should report exhaustion after close")
	}
}

// TestFairQueueInterleavedPushPop: clients joining mid-stream enter the
// rotation without disturbing FIFO order within a client.
func TestFairQueueInterleavedPushPop(t *testing.T) {
	q := newFairQueue()
	q.push(qjob("a1", "alice"))
	q.push(qjob("a2", "alice"))
	if j, _ := q.pop(); j.id != "a1" {
		t.Fatalf("got %s, want a1", j.id)
	}
	q.push(qjob("b1", "bob"))
	first, _ := q.pop()
	second, _ := q.pop()
	got := first.id + "," + second.id
	if got != "a2,b1" && got != "b1,a2" {
		t.Fatalf("expected one job each from alice and bob, got %s", got)
	}
}

// TestFairQueueTakeMatching: the handover donor path removes exactly the
// predicate's jobs — in the deterministic per-client order the ring held
// them — and leaves the queue consistent for further push/pop traffic.
func TestFairQueueTakeMatching(t *testing.T) {
	q := newFairQueue()
	for _, j := range []*Job{
		qjob("a1", "alice"), qjob("a2", "alice"),
		qjob("b1", "bob"), qjob("b2", "bob"),
		qjob("c1", "carol"),
	} {
		q.push(j)
	}
	taken := q.takeMatching(func(j *Job) bool { return j.id == "a2" || j.id == "b1" || j.id == "b2" })
	if len(taken) != 3 {
		t.Fatalf("took %d jobs, want 3", len(taken))
	}
	got := taken[0].id + "," + taken[1].id + "," + taken[2].id
	if got != "a2,b1,b2" {
		t.Fatalf("take order %s, want a2,b1,b2 (ring order, FIFO per client)", got)
	}
	if q.len() != 2 {
		t.Fatalf("queue len %d after take, want 2", q.len())
	}
	q.push(qjob("b3", "bob")) // bob left the ring entirely; must rejoin cleanly
	var rest []string
	for q.len() > 0 {
		j, _ := q.pop()
		rest = append(rest, j.id)
	}
	if got := strings.Join(rest, ","); got != "a1,c1,b3" {
		t.Fatalf("remaining order %s, want a1,c1,b3", got)
	}
}

// TestFairQueueTakeMatchingAll: taking everything empties the rotation and
// tryPop reports exhaustion rather than touching stale ring slots.
func TestFairQueueTakeMatchingAll(t *testing.T) {
	q := newFairQueue()
	q.push(qjob("a1", "alice"))
	q.push(qjob("b1", "bob"))
	if taken := q.takeMatching(func(*Job) bool { return true }); len(taken) != 2 {
		t.Fatalf("took %d, want 2", len(taken))
	}
	if q.len() != 0 {
		t.Fatalf("len %d, want 0", q.len())
	}
	if _, ok := q.tryPop(); ok {
		t.Fatal("tryPop on emptied queue must fail")
	}
}
