package service

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sim"
)

// tinyCfg is a fast four-core configuration for scheduler tests.
func tinyCfg(seed uint64) sim.Config {
	cfg := sim.Default([]string{"mcf", "sphinx3", "soplex", "libquantum"})
	cfg.InstrPerCore = 1000
	cfg.Seed = seed
	return cfg
}

// blockerCfg returns a config whose construction blocks until release is
// closed — it parks a worker without consuming CPU. CoreTweak also makes it
// uncacheable, which is what keeps it out of the cache/coalescing paths.
func blockerCfg(release <-chan struct{}) sim.Config {
	cfg := tinyCfg(99)
	cfg.CoreTweak = func(*cpu.Config) { <-release }
	return cfg
}

func waitStats(t *testing.T, s *Service, ok func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for stats, last: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServiceMatchesDirectRun: a result served through the scheduler is
// bit-identical to running the same config directly.
func TestServiceMatchesDirectRun(t *testing.T) {
	cfg := tinyCfg(1)
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2, QueueCap: 8})
	defer s.Close()
	res, err := s.Run(context.Background(), "t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash() != direct.Hash() {
		t.Fatalf("service result hash %#x != direct run hash %#x", res.Hash(), direct.Hash())
	}
}

// TestCacheHitOnResubmit: resubmitting an identical config returns the
// cached result without re-running, observable via the Prometheus counter.
func TestCacheHitOnResubmit(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, QueueCap: 8, Metrics: reg})
	defer s.Close()
	cfg := tinyCfg(1)

	j1, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if j1.Status().Cached {
		t.Fatal("first run must not be marked cached")
	}

	j2, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if st.State != StateDone || !st.Cached {
		t.Fatalf("resubmit should be an immediate cached hit, got state=%s cached=%v", st.State, st.Cached)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res1 {
		t.Fatal("cache hit should return the stored result pointer")
	}

	stats := s.Stats()
	if stats.CacheHits != 1 || stats.Done != 2 {
		t.Fatalf("want 1 cache hit and 2 done, got %+v", stats)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `emcsim_service_cache_hits{component="service"} 1`) {
		t.Fatalf("metrics missing cache-hit counter:\n%s", b.String())
	}
}

// TestObsVariantNotSharedWithPlainRun: the same semantic config with
// lifecycle tracing enabled must not be served a cached untraced result.
func TestObsVariantNotSharedWithPlainRun(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Close()
	plain := tinyCfg(1)
	if _, err := s.Run(context.Background(), "t", plain); err != nil {
		t.Fatal(err)
	}
	traced := tinyCfg(1)
	traced.Obs = obs.Config{Enabled: true, SampleEvery: 1}
	res, err := s.Run(context.Background(), "t", traced)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("traced config was served the untraced cached result")
	}
	if st := s.Stats(); st.CacheHits != 0 {
		t.Fatalf("obs variant must be a distinct cache key, got %d hits", st.CacheHits)
	}
}

// TestCoalescing: an identical submission while the first is queued or
// running returns the same job instead of enqueuing a duplicate.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Close()

	blocker, err := s.Submit("t", blockerCfg(release))
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Running == 1 })

	cfg := tinyCfg(1)
	j1, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("identical in-flight submission should coalesce onto the same job")
	}
	if st := s.Stats(); st.Coalesced != 1 {
		t.Fatalf("want 1 coalesced, got %+v", st)
	}

	close(release)
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressure: QueueCap bounds queued jobs; Submit beyond it fails fast
// with ErrQueueFull and succeeds again once the queue drains.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 1})
	defer s.Close()

	if _, err := s.Submit("t", blockerCfg(release)); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has popped the blocker so the queue slot frees.
	waitStats(t, s, func(st Stats) bool { return st.Running == 1 && st.QueueDepth == 0 })

	j1, err := s.Submit("t", tinyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("t", tinyCfg(2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}

	close(release)
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.QueueDepth == 0 })
	if _, err := s.Submit("t", tinyCfg(2)); err != nil {
		t.Fatalf("submit after drain should succeed, got %v", err)
	}
}

// TestCancelQueued: cancelling a job that is still queued finalizes it as
// cancelled without running it.
func TestCancelQueued(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Close()

	if _, err := s.Submit("t", blockerCfg(release)); err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Running == 1 })
	j, err := s.Submit("t", tinyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	close(release)
	if _, err := j.Wait(context.Background()); !errors.Is(err, sim.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if st := j.Status(); st.State != StateCancelled {
		t.Fatalf("want cancelled state, got %s", st.State)
	}
	if st := j.Status(); st.Attempts != 0 {
		t.Fatalf("cancelled-while-queued job must not have run, attempts=%d", st.Attempts)
	}
}

// TestCancelRunning: cancelling a running job stops it at a cycle boundary
// and returns the partial result.
func TestCancelRunning(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8, ProgressInterval: 1000})
	defer s.Close()
	cfg := tinyCfg(1)
	cfg.InstrPerCore = 2_000_000

	j, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Running == 1 })
	if err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if !errors.Is(err, sim.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if res == nil {
		t.Fatal("running job should return a partial result on cancel")
	}
	var retired uint64
	for _, c := range res.Cores {
		retired += c.Stats.Retired
	}
	if retired >= cfg.InstrPerCore*4 {
		t.Fatalf("cancelled run retired the full budget (%d)", retired)
	}
	if st := s.Stats(); st.Cancelled != 1 {
		t.Fatalf("want 1 cancelled, got %+v", st)
	}
}

// TestPanicRetrySucceeds: a panic inside the simulator is recovered, the job
// retried, and the worker goroutine survives.
func TestPanicRetrySucceeds(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8, MaxRetries: 2})
	defer s.Close()
	var calls atomic.Int32
	cfg := tinyCfg(1)
	cfg.CoreTweak = func(*cpu.Config) {
		if calls.Add(1) == 1 {
			panic("injected fault")
		}
	}
	j, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil || res == nil {
		t.Fatalf("retried job should succeed, got res=%v err=%v", res, err)
	}
	st := j.Status()
	if st.Attempts != 2 {
		t.Fatalf("want 2 attempts, got %d", st.Attempts)
	}
	if stats := s.Stats(); stats.Retries != 1 || stats.Done != 1 {
		t.Fatalf("want 1 retry and 1 done, got %+v", stats)
	}
	// The worker must still be serving jobs.
	if _, err := s.Run(context.Background(), "t", tinyCfg(1)); err != nil {
		t.Fatalf("worker died after panic recovery: %v", err)
	}
}

// TestPanicExhaustsRetries: a persistently panicking job fails after the
// retry budget with the panic in its error.
func TestPanicExhaustsRetries(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8, MaxRetries: 1})
	defer s.Close()
	cfg := tinyCfg(1)
	cfg.CoreTweak = func(*cpu.Config) { panic("always broken") }
	j, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = j.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "simulation panic: always broken") {
		t.Fatalf("want wrapped panic error, got %v", err)
	}
	st := j.Status()
	if st.State != StateFailed || st.Attempts != 2 {
		t.Fatalf("want failed after 2 attempts, got state=%s attempts=%d", st.State, st.Attempts)
	}
	if stats := s.Stats(); stats.Failed != 1 || stats.Retries != 1 {
		t.Fatalf("want 1 failed, 1 retry, got %+v", stats)
	}
}

// TestUncacheableJobsRerun: configs with function values have no canonical
// identity — they never coalesce and never hit the cache.
func TestUncacheableJobsRerun(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Close()
	mk := func() sim.Config {
		cfg := tinyCfg(1)
		cfg.CoreTweak = func(*cpu.Config) {}
		return cfg
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Run(context.Background(), "t", mk()); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheHits != 0 || st.Coalesced != 0 || st.Done != 2 {
		t.Fatalf("uncacheable jobs must re-run: %+v", st)
	}
}

// TestDrain: Drain completes queued work, then rejects new submissions.
func TestDrain(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 8})
	var jobs []*Job
	for i := uint64(1); i <= 3; i++ {
		j, err := s.Submit("t", tinyCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job %s not done after drain: %s", st.ID, st.State)
		}
	}
	if _, err := s.Submit("t", tinyCfg(9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining after drain, got %v", err)
	}
}

// TestCloseCancelsRunning: Close cancels in-flight jobs instead of waiting
// for them.
func TestCloseCancelsRunning(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8})
	cfg := tinyCfg(1)
	cfg.InstrPerCore = 5_000_000
	j, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Running == 1 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); st.State != StateCancelled {
		t.Fatalf("want cancelled after Close, got %s", st.State)
	}
}

// TestShardingIsDeterministic: equal cache keys map to equal shards.
func TestShardingIsDeterministic(t *testing.T) {
	cfg := tinyCfg(1)
	k1, ok1 := cacheKey(&cfg)
	cfg2 := tinyCfg(1)
	k2, ok2 := cacheKey(&cfg2)
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("equal configs must share a cache key: %q %q", k1, k2)
	}
	for _, shards := range []int{1, 2, 3, 8} {
		if shardOf(k1, shards) != shardOf(k2, shards) {
			t.Fatalf("shardOf not deterministic for %d shards", shards)
		}
		if s := shardOf(k1, shards); s < 0 || s >= shards {
			t.Fatalf("shard %d out of range [0,%d)", s, shards)
		}
	}
}
