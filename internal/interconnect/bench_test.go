package interconnect

import "testing"

// BenchmarkRingSendDeliver drives a 5-stop ring at one message per cycle
// through the full Send -> Tick -> Deliver -> Recycle lifecycle. With the
// message and flight free lists, steady state allocates nothing.
func BenchmarkRingSendDeliver(b *testing.B) {
	r := NewRing("bench", 5)
	var now uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		r.Send(int(now)%5, int(now+2)%5, nil, now)
		r.Tick(now)
		for s := 0; s < r.Stops(); s++ {
			for _, m := range r.Deliver(s) {
				r.Recycle(m)
			}
		}
	}
}

// BenchmarkRingLoaded keeps several messages in flight each cycle (the
// oldest-first link arbitration path, including deferred re-queues), at an
// injection rate the links can sustain.
func BenchmarkRingLoaded(b *testing.B) {
	r := NewRing("bench", 8)
	var now uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		src := int(now) % 8
		r.Send(src, (src+3)%8, nil, now)
		r.Send((src+4)%8, (src+7)%8, nil, now)
		r.Tick(now)
		for s := 0; s < 8; s++ {
			for _, m := range r.Deliver(s) {
				r.Recycle(m)
			}
		}
	}
}
