package interconnect

import "testing"

// ringCycle drives one cycle of the Send -> Tick -> Deliver -> Recycle
// lifecycle on a 5-stop ring.
func ringCycle(r *Ring, now uint64) {
	r.Send(int(now)%5, int(now+2)%5, nil, now)
	r.Tick(now)
	for s := 0; s < r.Stops(); s++ {
		for _, m := range r.Deliver(s) {
			r.Recycle(m)
		}
	}
}

// BenchmarkRingSendDeliver drives a 5-stop ring at one message per cycle
// through the full Send -> Tick -> Deliver -> Recycle lifecycle. The warm-up
// loop grows the free lists and inbox double-buffers to their steady-state
// capacity, after which the measured region allocates nothing (enforced by
// benchjson -check-noalloc against the //simlint:noalloc bench=Ring.*
// annotations).
func BenchmarkRingSendDeliver(b *testing.B) {
	r := NewRing("bench", 5)
	var now uint64
	for i := 0; i < 64; i++ {
		now++
		ringCycle(r, now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		ringCycle(r, now)
	}
}

// BenchmarkRingLoaded keeps several messages in flight each cycle (the
// oldest-first link arbitration path, including deferred re-queues), at an
// injection rate the links can sustain. Warm-up reaches the in-flight
// high-water mark before measurement so steady state is allocation-free.
func BenchmarkRingLoaded(b *testing.B) {
	r := NewRing("bench", 8)
	var now uint64
	loaded := func() {
		now++
		src := int(now) % 8
		r.Send(src, (src+3)%8, nil, now)
		r.Send((src+4)%8, (src+7)%8, nil, now)
		r.Tick(now)
		for s := 0; s < 8; s++ {
			for _, m := range r.Deliver(s) {
				r.Recycle(m)
			}
		}
	}
	for i := 0; i < 64; i++ {
		loaded()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded()
	}
}
