package interconnect

import (
	"testing"
	"testing/quick"
)

func TestHops(t *testing.T) {
	cases := []struct {
		src, dst, n, want int
	}{
		{0, 0, 5, 0},
		{0, 1, 5, 1},
		{0, 4, 5, 1}, // wrap is shorter
		{0, 2, 5, 2},
		{0, 3, 5, 2}, // wrap
		{1, 4, 8, 3},
		{7, 0, 8, 1},
	}
	for _, c := range cases {
		if got := Hops(c.src, c.dst, c.n); got != c.want {
			t.Errorf("Hops(%d,%d,%d) = %d, want %d", c.src, c.dst, c.n, got, c.want)
		}
	}
}

func drainUntil(t *testing.T, r *Ring, stop int, maxCycles int) (*Message, uint64) {
	t.Helper()
	for cy := uint64(1); cy <= uint64(maxCycles); cy++ {
		r.Tick(cy)
		if ms := r.Deliver(stop); len(ms) > 0 {
			return ms[0], cy
		}
	}
	t.Fatalf("no delivery at stop %d within %d cycles", stop, maxCycles)
	return nil, 0
}

func TestUncontendedLatencyEqualsHops(t *testing.T) {
	r := NewRing("ctrl", 5)
	r.Send(0, 3, "x", 0) // shortest path: 2 hops via wrap
	m, cy := drainUntil(t, r, 3, 10)
	if cy != 2 {
		t.Errorf("delivered at cycle %d, want 2", cy)
	}
	if m.Payload != "x" || m.DeliveredAt != 2 {
		t.Errorf("message state wrong: %+v", m)
	}
}

func TestSameStopDeliversImmediately(t *testing.T) {
	r := NewRing("ctrl", 4)
	r.Send(2, 2, 99, 7)
	ms := r.Deliver(2)
	if len(ms) != 1 || ms[0].DeliveredAt != 7 {
		t.Fatalf("same-stop delivery wrong: %+v", ms)
	}
	if r.InFlight() != 0 {
		t.Error("nothing should be in flight")
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	r := NewRing("data", 8)
	// Two messages from the same stop in the same direction must share the
	// first link: second is delayed one cycle.
	r.Send(0, 2, "a", 0)
	r.Send(0, 2, "b", 0)
	var got []uint64
	for cy := uint64(1); cy <= 10 && len(got) < 2; cy++ {
		r.Tick(cy)
		for _, m := range r.Deliver(2) {
			got = append(got, m.DeliveredAt)
		}
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("delivery cycles %v, want [2 3]", got)
	}
}

func TestOppositeDirectionsDontContend(t *testing.T) {
	r := NewRing("data", 8)
	r.Send(0, 1, "cw", 0)  // clockwise
	r.Send(0, 7, "ccw", 0) // counter-clockwise
	r.Tick(1)
	if len(r.Deliver(1)) != 1 || len(r.Deliver(7)) != 1 {
		t.Error("messages in opposite directions should both deliver in 1 cycle")
	}
}

func TestOldestFirstArbitration(t *testing.T) {
	// Both messages need link 0->1 every cycle they sit at stop 0; the
	// first-sent message wins each arbitration, so they pipeline in send
	// order: old at cycle 3, young one cycle behind.
	r := NewRing("data", 6)
	r.Send(0, 3, "old", 0)
	r.Send(0, 3, "young", 0)
	delivered := map[string]uint64{}
	for cy := uint64(1); cy <= 10; cy++ {
		r.Tick(cy)
		for _, m := range r.Deliver(3) {
			delivered[m.Payload.(string)] = m.DeliveredAt
		}
	}
	if delivered["old"] != 3 || delivered["young"] != 4 {
		t.Errorf("delivered old=%d young=%d, want 3 and 4", delivered["old"], delivered["young"])
	}
}

func TestStats(t *testing.T) {
	r := NewRing("ctrl", 4)
	r.Send(0, 2, nil, 0)
	for cy := uint64(1); cy <= 5; cy++ {
		r.Tick(cy)
	}
	r.Deliver(2)
	if r.Stats.Messages != 1 || r.Stats.Delivered != 1 || r.Stats.TotalHops != 2 {
		t.Errorf("stats wrong: %+v", r.Stats)
	}
	if r.AvgLatency() != 2 {
		t.Errorf("avg latency %v, want 2", r.AvgLatency())
	}
}

func TestAvgLatencyEmpty(t *testing.T) {
	r := NewRing("ctrl", 4)
	if r.AvgLatency() != 0 {
		t.Error("empty ring should report 0 latency")
	}
}

func TestTinyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 1-stop ring")
		}
	}()
	NewRing("bad", 1)
}

// Property: every message is eventually delivered, exactly once, with
// latency >= its hop distance.
func TestAllDeliveredProperty(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 40 {
			seeds = seeds[:40]
		}
		const stops = 9
		r := NewRing("p", stops)
		type sent struct{ src, dst int }
		msgs := map[uint64]sent{}
		for i, s := range seeds {
			src := int(s) % stops
			dst := int(s>>4) % stops
			m := r.Send(src, dst, i, 0)
			if src != dst {
				msgs[m.ID] = sent{src, dst}
			}
		}
		delivered := 0
		for cy := uint64(1); cy <= 600; cy++ {
			r.Tick(cy)
			for s := 0; s < stops; s++ {
				for _, m := range r.Deliver(s) {
					info, ok := msgs[m.ID]
					if ok {
						if s != info.dst {
							return false
						}
						lat := int(m.DeliveredAt - m.SentAt)
						if lat < Hops(info.src, info.dst, stops) {
							return false
						}
						delete(msgs, m.ID)
						delivered++
					}
				}
			}
		}
		return len(msgs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
