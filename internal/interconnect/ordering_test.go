package interconnect

import (
	"testing"
	"testing/quick"
)

// Property: messages between the same (src, dst) pair deliver in send order
// (the ring never reorders a flow), which the multi-flit chain transfers
// rely on.
func TestPerFlowFIFOProperty(t *testing.T) {
	f := func(pairs []uint8, n uint8) bool {
		stops := 4 + int(n%6)
		r := NewRing("fifo", stops)
		type key struct{ src, dst int }
		sent := map[key][]int{}
		for i, p := range pairs {
			if len(sent) > 64 {
				break
			}
			src := int(p) % stops
			dst := int(p>>4) % stops
			if src == dst {
				continue
			}
			r.Send(src, dst, i, 0)
			k := key{src, dst}
			sent[k] = append(sent[k], i)
		}
		got := map[key][]int{}
		for cy := uint64(1); cy <= 2000; cy++ {
			r.Tick(cy)
			for s := 0; s < stops; s++ {
				for _, m := range r.Deliver(s) {
					k := key{m.Src, m.Dst}
					got[k] = append(got[k], m.Payload.(int))
				}
			}
			if r.InFlight() == 0 {
				break
			}
		}
		for k, want := range sent {
			g := got[k]
			if len(g) != len(want) {
				return false
			}
			for i := range want {
				if g[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
