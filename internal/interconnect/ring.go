// Package interconnect models the chip's on-die interconnect: two
// bi-directional rings (an 8-byte control ring and a 64-byte data ring, per
// Table 1 of the paper) connecting the cores' ring stops, their LLC slices,
// and the memory controller stop(s).
//
// Each ring link carries one message per cycle per direction; messages take
// the shorter way around and contend for links oldest-first. Delivery
// latency therefore includes both hop count and queueing, which is exactly
// the "on-chip delay" component the paper measures.
package interconnect

// Message is one transfer on a ring. For the data ring a message is a
// 64-byte flit (a cache line, a chain packet, or a live-in/live-out packet);
// for the control ring it is a single 8-byte request/response.
type Message struct {
	ID      uint64
	Src     int
	Dst     int
	Payload any

	// SentAt is the cycle the message entered the injection queue.
	SentAt uint64
	// DeliveredAt is filled in when the message reaches Dst.
	DeliveredAt uint64
}

// Hops returns the minimal hop distance between message endpoints on a ring
// with n stops.
func Hops(src, dst, n int) int {
	d := dst - src
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Stats aggregates ring activity.
type Stats struct {
	Messages     uint64
	TotalHops    uint64
	TotalLatency uint64
	Delivered    uint64
}

// NoEvent is the NextEvent sentinel: the component has no future work until
// external input arrives.
const NoEvent = ^uint64(0)

// Ring is one bi-directional ring.
type Ring struct {
	name  string
	stops int

	nextID uint64
	// flights holds in-flight transfers by value: Tick's oldest-first
	// arbitration walks a dense slice (no per-flight pointer chase or free
	// list), and the backing array reaches steady-state capacity after
	// warm-up so Send appends stop allocating.
	flights []flight
	inboxes [][]*Message
	// spare double-buffers each inbox so Deliver can hand out the filled
	// buffer and install an empty one without allocating; queued tracks the
	// total occupancy across inboxes (for NextEvent).
	spare  [][]*Message
	queued int

	// linkBusy marks links used this cycle: index = dir*stops + fromStop.
	linkBusy []bool

	// Message free list. Messages are recycled only through Recycle, so
	// callers that hold delivered Messages (tests, diagnostics) stay safe.
	msgPool []*Message

	Stats Stats
}

type flight struct {
	msg *Message
	pos int
	dir int // +1 clockwise, -1 counter-clockwise
}

// NewRing builds a ring with the given number of stops.
func NewRing(name string, stops int) *Ring {
	if stops < 2 {
		panic("interconnect: ring needs at least 2 stops")
	}
	return &Ring{
		name:     name,
		stops:    stops,
		inboxes:  make([][]*Message, stops),
		spare:    make([][]*Message, stops),
		linkBusy: make([]bool, 2*stops),
	}
}

//simlint:noalloc bench=Ring.*
func (r *Ring) allocMsg() *Message {
	if n := len(r.msgPool); n > 0 {
		m := r.msgPool[n-1]
		r.msgPool = r.msgPool[:n-1]
		return m
	}
	return &Message{} //simlint:allocok cold start only; Recycle repopulates the pool, so steady state hits the free list
}

// Recycle returns a delivered Message to the ring's free list. Callers that
// retain delivered Messages simply never call it; only recycled objects are
// reused.
//
//simlint:noalloc bench=Ring.*
func (r *Ring) Recycle(m *Message) {
	*m = Message{}
	r.msgPool = append(r.msgPool, m) //simlint:allocok pool capacity stabilizes at the in-flight high-water mark
}

// Stops returns the number of ring stops.
func (r *Ring) Stops() int { return r.stops }

// Name returns the ring's name.
func (r *Ring) Name() string { return r.name }

// Send injects a message. Same-stop messages deliver immediately (the
// paper's 1-cycle core-to-local-slice bypass is modeled by the caller's
// pipeline latency, not the ring).
//
//simlint:noalloc bench=Ring.*
func (r *Ring) Send(src, dst int, payload any, now uint64) *Message {
	r.nextID++
	m := r.allocMsg()
	m.ID, m.Src, m.Dst, m.Payload, m.SentAt, m.DeliveredAt = r.nextID, src, dst, payload, now, 0
	r.Stats.Messages++
	if src == dst {
		m.DeliveredAt = now
		r.Stats.Delivered++
		r.inboxes[dst] = append(r.inboxes[dst], m) //simlint:allocok inbox buffers double-buffer via Deliver and keep their capacity
		r.queued++
		return m
	}
	dir := +1
	fwd := (dst - src + r.stops) % r.stops
	if fwd > r.stops-fwd {
		dir = -1
	}
	r.flights = append(r.flights, flight{msg: m, pos: src, dir: dir}) //simlint:allocok flights backing array reaches the in-flight high-water mark and stays there
	return m
}

// InFlight returns the number of messages still travelling.
func (r *Ring) InFlight() int { return len(r.flights) }

// Queued returns the number of delivered messages waiting in stop inboxes
// (a live occupancy gauge for the observability layer).
func (r *Ring) Queued() int { return r.queued }

// Tick advances every in-flight message by at most one hop. Messages are
// serviced oldest-first, so a congested link delays younger traffic — the
// queueing component of on-chip latency.
//
//simlint:noalloc bench=Ring.*
func (r *Ring) Tick(now uint64) {
	for i := range r.linkBusy {
		r.linkBusy[i] = false
	}
	// Compact survivors in place: flights is value-typed, so blocked and
	// still-travelling entries copy within the same backing array.
	w := 0
	for i := range r.flights {
		f := r.flights[i]
		link := r.linkIndex(f.pos, f.dir)
		if r.linkBusy[link] {
			r.flights[w] = f
			w++
			continue
		}
		r.linkBusy[link] = true
		f.pos = (f.pos + f.dir + r.stops) % r.stops
		r.Stats.TotalHops++
		if f.pos == f.msg.Dst {
			f.msg.DeliveredAt = now
			r.Stats.TotalLatency += now - f.msg.SentAt
			r.Stats.Delivered++
			r.inboxes[f.pos] = append(r.inboxes[f.pos], f.msg) //simlint:allocok inbox buffers double-buffer via Deliver and keep their capacity
			r.queued++
		} else {
			r.flights[w] = f
			w++
		}
	}
	r.flights = r.flights[:w]
}

// NextEvent reports the earliest future cycle at which the ring can change
// state: the next cycle while anything is in flight or queued at a stop, or
// NoEvent when the ring is completely drained.
//
//simlint:noalloc bench=Ring.*
func (r *Ring) NextEvent(now uint64) uint64 {
	if len(r.flights) > 0 || r.queued > 0 {
		return now + 1
	}
	return NoEvent
}

func (r *Ring) linkIndex(from, dir int) int {
	if dir > 0 {
		return from
	}
	return r.stops + from
}

// Deliver drains and returns the messages that have arrived at a stop. The
// returned slice is valid until the next Deliver for the same stop (the two
// underlying buffers alternate); the Messages themselves stay valid until
// recycled.
//
//simlint:noalloc bench=Ring.*
func (r *Ring) Deliver(stop int) []*Message {
	msgs := r.inboxes[stop]
	if len(msgs) == 0 {
		return nil
	}
	r.queued -= len(msgs)
	if r.spare[stop] != nil {
		r.inboxes[stop] = r.spare[stop][:0]
	} else {
		r.inboxes[stop] = nil
	}
	r.spare[stop] = msgs
	return msgs
}

// AvgLatency returns the mean delivery latency in cycles.
func (r *Ring) AvgLatency() float64 {
	if r.Stats.Delivered == 0 {
		return 0
	}
	return float64(r.Stats.TotalLatency) / float64(r.Stats.Delivered)
}
