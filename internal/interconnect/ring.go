// Package interconnect models the chip's on-die interconnect: two
// bi-directional rings (an 8-byte control ring and a 64-byte data ring, per
// Table 1 of the paper) connecting the cores' ring stops, their LLC slices,
// and the memory controller stop(s).
//
// Each ring link carries one message per cycle per direction; messages take
// the shorter way around and contend for links oldest-first. Delivery
// latency therefore includes both hop count and queueing, which is exactly
// the "on-chip delay" component the paper measures.
package interconnect

// Message is one transfer on a ring. For the data ring a message is a
// 64-byte flit (a cache line, a chain packet, or a live-in/live-out packet);
// for the control ring it is a single 8-byte request/response.
type Message struct {
	ID      uint64
	Src     int
	Dst     int
	Payload any

	// SentAt is the cycle the message entered the injection queue.
	SentAt uint64
	// DeliveredAt is filled in when the message reaches Dst.
	DeliveredAt uint64
}

// Hops returns the minimal hop distance between message endpoints on a ring
// with n stops.
func Hops(src, dst, n int) int {
	d := dst - src
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Stats aggregates ring activity.
type Stats struct {
	Messages     uint64
	TotalHops    uint64
	TotalLatency uint64
	Delivered    uint64
}

// Ring is one bi-directional ring.
type Ring struct {
	name  string
	stops int

	nextID  uint64
	flights []*flight
	inboxes [][]*Message

	// linkBusy marks links used this cycle: index = dir*stops + fromStop.
	linkBusy []bool

	Stats Stats
}

type flight struct {
	msg *Message
	pos int
	dir int // +1 clockwise, -1 counter-clockwise
}

// NewRing builds a ring with the given number of stops.
func NewRing(name string, stops int) *Ring {
	if stops < 2 {
		panic("interconnect: ring needs at least 2 stops")
	}
	return &Ring{
		name:     name,
		stops:    stops,
		inboxes:  make([][]*Message, stops),
		linkBusy: make([]bool, 2*stops),
	}
}

// Stops returns the number of ring stops.
func (r *Ring) Stops() int { return r.stops }

// Name returns the ring's name.
func (r *Ring) Name() string { return r.name }

// Send injects a message. Same-stop messages deliver immediately (the
// paper's 1-cycle core-to-local-slice bypass is modeled by the caller's
// pipeline latency, not the ring).
func (r *Ring) Send(src, dst int, payload any, now uint64) *Message {
	r.nextID++
	m := &Message{ID: r.nextID, Src: src, Dst: dst, Payload: payload, SentAt: now}
	r.Stats.Messages++
	if src == dst {
		m.DeliveredAt = now
		r.Stats.Delivered++
		r.inboxes[dst] = append(r.inboxes[dst], m)
		return m
	}
	dir := +1
	fwd := (dst - src + r.stops) % r.stops
	if fwd > r.stops-fwd {
		dir = -1
	}
	r.flights = append(r.flights, &flight{msg: m, pos: src, dir: dir})
	return m
}

// InFlight returns the number of messages still travelling.
func (r *Ring) InFlight() int { return len(r.flights) }

// Tick advances every in-flight message by at most one hop. Messages are
// serviced oldest-first, so a congested link delays younger traffic — the
// queueing component of on-chip latency.
func (r *Ring) Tick(now uint64) {
	for i := range r.linkBusy {
		r.linkBusy[i] = false
	}
	keep := r.flights[:0]
	for _, f := range r.flights {
		link := r.linkIndex(f.pos, f.dir)
		if r.linkBusy[link] {
			keep = append(keep, f)
			continue
		}
		r.linkBusy[link] = true
		f.pos = (f.pos + f.dir + r.stops) % r.stops
		r.Stats.TotalHops++
		if f.pos == f.msg.Dst {
			f.msg.DeliveredAt = now
			r.Stats.TotalLatency += now - f.msg.SentAt
			r.Stats.Delivered++
			r.inboxes[f.pos] = append(r.inboxes[f.pos], f.msg)
		} else {
			keep = append(keep, f)
		}
	}
	r.flights = keep
}

func (r *Ring) linkIndex(from, dir int) int {
	if dir > 0 {
		return from
	}
	return r.stops + from
}

// Deliver drains and returns the messages that have arrived at a stop.
func (r *Ring) Deliver(stop int) []*Message {
	msgs := r.inboxes[stop]
	r.inboxes[stop] = nil
	return msgs
}

// AvgLatency returns the mean delivery latency in cycles.
func (r *Ring) AvgLatency() float64 {
	if r.Stats.Delivered == 0 {
		return 0
	}
	return float64(r.Stats.TotalLatency) / float64(r.Stats.Delivered)
}
