GO ?= go

.PHONY: all build test race bench experiments clean

all: build test

build:
	$(GO) build ./...

# Tier-1 gate: build everything, run the full test suite, then the
# race-enabled determinism suite over the simulator core.
test: build
	$(GO) test ./...
	$(GO) test -race ./internal/sim/...

race:
	$(GO) test -race ./internal/sim/...

# Microbenchmark smoke run: one iteration of every benchmark in the
# simulator core, interconnect, and DRAM packages, captured as JSON so a
# later session (or CI) can diff allocation and latency regressions.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x -count=1 \
		./internal/sim/ ./internal/interconnect/ ./internal/mem/dram/ \
		| $(GO) run ./cmd/benchjson > BENCH_sim.json
	@echo wrote BENCH_sim.json

experiments:
	$(GO) run ./cmd/experiments -md results-run.md

clean:
	rm -f BENCH_sim.json results-run.md *.test *.prof
