GO ?= go

.PHONY: all build vet lint lint-canary test race bench experiments trace-smoke serve-smoke dashboard-smoke chaos chaos-cluster kill-smoke cluster-smoke heal-smoke clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Custom static analysis (cmd/simlint): determinism, zero-alloc, failpoint
# registry, atomic-hygiene, determinism-taint, lock-order, goroutine-leak,
# and float-order invariants — the last four on the cross-package dataflow
# IR. The driver is built through the normal go build cache, so warm runs
# cost seconds.
lint:
	$(GO) run ./cmd/simlint ./...

# Lint self-test: inject known violations (a wall clock flowing into a
# Result in the cluster layer, a reversed lock pair, a leaked goroutine)
# into a throwaway overlay of the tree and assert simlint fails on each,
# naming the right analyzer — so a silently broken analyzer cannot pass CI
# by reporting nothing (see scripts/lint_canary.sh).
lint-canary:
	GO="$(GO)" sh scripts/lint_canary.sh

# Tier-1 gate: build everything, vet + simlint, run the full test suite,
# the race-enabled suites over the simulator core, the job scheduler, and
# the cluster fabric, and the observability end-to-end smoke.
test: build vet lint
	$(GO) test ./...
	$(GO) test -race ./internal/sim/... ./internal/service/... ./internal/obs/... ./internal/cluster/...
	$(MAKE) trace-smoke

race:
	$(GO) test -race ./internal/sim/... ./internal/service/... ./internal/obs/... ./internal/cluster/...

# End-to-end observability smoke: run a tiny traced workload with the debug
# server up, validate the Chrome trace against the schema, and scrape
# /metrics once (see scripts/trace_smoke.sh).
trace-smoke:
	GO="$(GO)" sh scripts/trace_smoke.sh

# End-to-end service smoke: boot emcserve, submit a tiny job with emcctl,
# verify the cached-resubmit path and the graceful SIGTERM drain (see
# scripts/serve_smoke.sh).
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# Observability smoke: boot emcserve with the flight recorder armed and an
# induced oneshot panic, run a small sweep, then assert /api/v1/stats,
# emcctl top, the flight dump (tracecheck -flight), and the span trace
# export (see scripts/dashboard_smoke.sh).
dashboard-smoke:
	GO="$(GO)" sh scripts/dashboard_smoke.sh

# Chaos suite: 50 seeded fault schedules through the service under the race
# detector (failpoint injection, random cancels, durable-cache restarts with
# corruption). Deterministic per seed; see internal/service/chaos_test.go.
chaos:
	EMCSIM_CHAOS_SCHEDULES=50 $(GO) test -race -run TestChaosSchedules -count=1 ./internal/service/

# Multi-node chaos: 25 seeded fault schedules through a 3-node fabric under
# the race detector (forwarding/replication/steal failpoints, a network
# partition window, node kills mid-sweep), plus 25 self-healing schedules
# (join mid-sweep, kill-and-restart with anti-entropy backfill, flapping
# peers through the circuit breakers). Deterministic per seed; see
# internal/cluster/chaos_cluster_test.go and chaos_heal_test.go.
chaos-cluster:
	EMCSIM_CHAOS_SCHEDULES=25 $(GO) test -race -run 'TestClusterChaosSchedules|TestClusterHealSchedules' -count=1 ./internal/cluster/

# Crash-recovery smoke: boot emcserve with a durable cache, compute a
# result, SIGKILL the server mid-sweep, restart it over the same directory,
# and verify the resubmitted job is served from the durable cache with a
# byte-identical result (see scripts/kill_smoke.sh).
kill-smoke:
	GO="$(GO)" sh scripts/kill_smoke.sh

# Sweep-fabric smoke: boot three real emcserve nodes (-node-id/-join), run
# the same sweep through different entry nodes, SIGKILL one node mid-sweep,
# and verify every job completes with byte-identical results on the
# survivors (see scripts/cluster_smoke.sh).
cluster-smoke:
	GO="$(GO)" sh scripts/cluster_smoke.sh

# Self-healing smoke: boot a token-authenticated 3-node fabric where one
# node joins mid-sweep, SIGKILL it mid-flight of a second sweep, restart it
# over the same durable cache directory, and verify its record set converges
# byte-for-byte with the survivor via anti-entropy alone (see
# scripts/heal_smoke.sh).
heal-smoke:
	GO="$(GO)" sh scripts/heal_smoke.sh

# Microbenchmark snapshot: every benchmark in the simulator core,
# interconnect, and DRAM packages, captured as JSON so a later session (or
# CI's bench job) can diff allocation and latency regressions. The iteration
# count is pinned (not time-based) so allocs/op is deterministic: warm-up
# loops inside the benchmarks reach steady-state pool/queue capacity, and at
# 100 measured iterations any per-op allocation shows up as >= 1 alloc/op
# instead of being rounded away.
BENCHTIME ?= 100x
bench:
	$(GO) test -run xxx -bench . -benchtime=$(BENCHTIME) -count=1 \
		./internal/sim/ ./internal/interconnect/ ./internal/mem/dram/ ./internal/obs/span/ \
		| $(GO) run ./cmd/benchjson > BENCH_sim.json
	@echo wrote BENCH_sim.json
	$(GO) run ./cmd/benchjson -check-noalloc BENCH_sim.json
	$(GO) run ./cmd/benchjson -trend BENCH_history.jsonl -trend-keep 200 \
		-commit $$(git rev-parse --short HEAD 2>/dev/null || echo unknown) BENCH_sim.json

experiments:
	$(GO) run ./cmd/experiments -md results-run.md

clean:
	rm -f BENCH_sim.json results-run.md *.test *.prof
	rm -rf .smoke .smoke-serve .smoke-dash .smoke-kill .smoke-cluster .smoke-heal
