// Package emcsim is the public API of the Enhanced Memory Controller
// reproduction: a cycle-level multi-core simulator implementing the system
// of Hashemi et al., "Accelerating Dependent Cache Misses with an Enhanced
// Memory Controller" (ISCA 2016).
//
// The package wraps the internal simulator behind a small, stable surface:
// build a SystemConfig (Table 1 of the paper by default), pick a Workload
// (the paper's H1–H10 mixes, homogeneous quad-core copies, or any custom
// benchmark list), and Run it to get a Result with the statistics every
// figure of the paper derives from.
//
//	cfg := emcsim.QuadCore(emcsim.PFGHB, true) // GHB prefetcher + EMC
//	res, err := emcsim.Run(cfg, emcsim.Workload{
//	    Name:         "H4",
//	    Benchmarks:   []string{"mcf", "sphinx3", "soplex", "libquantum"},
//	    InstrPerCore: 50_000,
//	})
package emcsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// PrefetcherKind selects the LLC prefetcher configuration (Table 1).
type PrefetcherKind = sim.PrefetcherKind

// The prefetcher configurations evaluated in the paper.
const (
	PFNone         = sim.PFNone
	PFGHB          = sim.PFGHB
	PFStream       = sim.PFStream
	PFMarkovStream = sim.PFMarkovStream
)

// SystemConfig describes the simulated chip. It is a re-export of the
// internal configuration; construct it with QuadCore/EightCore and adjust
// fields for sensitivity studies.
type SystemConfig = sim.Config

// Result carries everything a run measures; see the methods on sim.Result
// for the derived metrics used by the paper's figures (miss latencies,
// row-conflict rates, EMC coverage, energy breakdown, ...).
type Result = sim.Result

// Workload names a multiprogrammed benchmark mix.
type Workload struct {
	Name         string
	Benchmarks   []string
	InstrPerCore uint64
	Seed         uint64
}

// QuadCore returns the paper's quad-core system (Fig. 7, Table 1) with the
// given prefetcher and EMC setting. Benchmarks are supplied at Run time.
func QuadCore(pf PrefetcherKind, emc bool) SystemConfig {
	cfg := sim.Default(make([]string, 4))
	cfg.Benchmarks = nil
	cfg.Prefetcher = pf
	cfg.EMCEnabled = emc
	return cfg
}

// EightCore returns the paper's eight-core system (Fig. 11) with mcs memory
// controllers (1 or 2).
func EightCore(pf PrefetcherKind, emc bool, mcs int) SystemConfig {
	cfg := sim.Default(make([]string, 8))
	cfg.Benchmarks = nil
	cfg.Prefetcher = pf
	cfg.EMCEnabled = emc
	cfg.MCs = mcs
	return cfg
}

// System re-exports the simulator handle. Build one with NewSystem when you
// need more than the Result — the lifecycle Tracer (Chrome trace export) and
// the interval CounterLog live on the System, not the Result.
type System = sim.System

// RunHandle re-exports the cancellable run driver: build one with
// System.NewRunHandle to get cooperative cancellation (SIGINT handling, the
// job service) and periodic Progress callbacks.
type RunHandle = sim.RunHandle

// Progress is one periodic snapshot of an in-flight run.
type Progress = sim.Progress

// ErrCancelled is returned by RunHandle.Run when the run was cancelled; the
// Result alongside it carries partial statistics.
var ErrCancelled = sim.ErrCancelled

// NewSystem builds (but does not run) a simulator for workload wl on system
// cfg. Call Run on the returned System; observability handles (Tracer,
// CounterLog) remain valid afterwards.
func NewSystem(cfg SystemConfig, wl Workload) (*System, error) {
	if len(wl.Benchmarks) == 0 {
		return nil, fmt.Errorf("emcsim: workload %q has no benchmarks", wl.Name)
	}
	cfg.Benchmarks = wl.Benchmarks
	if wl.InstrPerCore > 0 {
		cfg.InstrPerCore = wl.InstrPerCore
	}
	if wl.Seed > 0 {
		cfg.Seed = wl.Seed
	}
	return sim.New(cfg)
}

// Run simulates workload wl on system cfg and returns the collected result.
func Run(cfg SystemConfig, wl Workload) (*Result, error) {
	sys, err := NewSystem(cfg, wl)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// Benchmarks returns every available SPEC CPU2006 benchmark profile name.
func Benchmarks() []string { return trace.AllNames() }

// HighIntensityBenchmarks returns the paper's Table-2 high-MPKI set.
func HighIntensityBenchmarks() []string { return trace.HighIntensityNames() }

// Workloads returns the paper's Table-3 quad-core mixes H1–H10.
func Workloads() []Workload {
	mixes := [][]string{
		{"bwaves", "lbm", "milc", "omnetpp"},           // H1
		{"soplex", "omnetpp", "bwaves", "libquantum"},  // H2
		{"sphinx3", "mcf", "omnetpp", "milc"},          // H3
		{"mcf", "sphinx3", "soplex", "libquantum"},     // H4
		{"lbm", "mcf", "libquantum", "bwaves"},         // H5
		{"lbm", "soplex", "mcf", "milc"},               // H6
		{"bwaves", "libquantum", "sphinx3", "omnetpp"}, // H7
		{"omnetpp", "soplex", "mcf", "bwaves"},         // H8
		{"lbm", "mcf", "libquantum", "soplex"},         // H9
		{"libquantum", "bwaves", "soplex", "omnetpp"},  // H10
	}
	out := make([]Workload, len(mixes))
	for i, m := range mixes {
		out[i] = Workload{Name: fmt.Sprintf("H%d", i+1), Benchmarks: m}
	}
	return out
}

// HomogeneousWorkloads returns four copies of each high-intensity benchmark
// (the paper's Fig. 13 configuration).
func HomogeneousWorkloads() []Workload {
	var out []Workload
	for _, b := range trace.HighIntensityNames() {
		out = append(out, Workload{
			Name:       "4x" + b,
			Benchmarks: []string{b, b, b, b},
		})
	}
	return out
}

// EightCoreWorkload doubles a quad-core mix (the paper's 8-core methodology).
func EightCoreWorkload(w Workload) Workload {
	return Workload{
		Name:       w.Name + "x2",
		Benchmarks: append(append([]string{}, w.Benchmarks...), w.Benchmarks...),
		Seed:       w.Seed,
	}
}
