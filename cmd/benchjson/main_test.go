package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTree lays down a tiny annotated source tree and a bench snapshot,
// returning their paths.
func writeTree(t *testing.T, snapshot string) (src, snap string) {
	t.Helper()
	dir := t.TempDir()
	src = filepath.Join(dir, "src")
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	code := `package hot

//simlint:noalloc bench=BenchmarkHot.*
func hotPath() {}
`
	if err := os.WriteFile(filepath.Join(src, "hot.go"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	snap = filepath.Join(dir, "bench.json")
	if err := os.WriteFile(snap, []byte(snapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	return src, snap
}

func TestCheckNoallocClean(t *testing.T) {
	src, snap := writeTree(t, `{"BenchmarkHotLoop": {"allocs/op": 0, "ns/op": 12}}`)
	if code := runCheckNoalloc(src, snap); code != 0 {
		t.Fatalf("clean snapshot: exit %d, want 0", code)
	}
}

func TestCheckNoallocViolation(t *testing.T) {
	src, snap := writeTree(t, `{"BenchmarkHotLoop": {"allocs/op": 3, "ns/op": 12}}`)
	if code := runCheckNoalloc(src, snap); code != 1 {
		t.Fatalf("allocating snapshot: exit %d, want 1", code)
	}
}

func TestCheckNoallocMissingMetric(t *testing.T) {
	src, snap := writeTree(t, `{"BenchmarkHotLoop": {"ns/op": 12}}`)
	if code := runCheckNoalloc(src, snap); code != 1 {
		t.Fatalf("missing allocs/op: exit %d, want 1", code)
	}
}

func TestCheckNoallocDrift(t *testing.T) {
	// No benchmark matches the annotation: the bench suite drifted.
	src, snap := writeTree(t, `{"BenchmarkSomethingElse": {"allocs/op": 0}}`)
	if code := runCheckNoalloc(src, snap); code != 1 {
		t.Fatalf("drifted snapshot: exit %d, want 1", code)
	}
}

// writeSnap writes one snapshot JSON file into a temp dir.
func writeSnap(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiffAllocsClean(t *testing.T) {
	// ns/op differs (machine-dependent) but allocs/op matches: clean.
	base := writeSnap(t, "base.json", `{"BenchmarkA": {"allocs/op": 0, "ns/op": 10}, "BenchmarkB": {"allocs/op": 2, "ns/op": 7}}`)
	fresh := writeSnap(t, "fresh.json", `{"BenchmarkA": {"allocs/op": 0, "ns/op": 99}, "BenchmarkB": {"allocs/op": 2, "ns/op": 1}}`)
	if code := runDiffAllocs(base, fresh); code != 0 {
		t.Fatalf("matching profiles: exit %d, want 0", code)
	}
}

func TestDiffAllocsRegression(t *testing.T) {
	base := writeSnap(t, "base.json", `{"BenchmarkA": {"allocs/op": 0}}`)
	fresh := writeSnap(t, "fresh.json", `{"BenchmarkA": {"allocs/op": 3}}`)
	if code := runDiffAllocs(base, fresh); code != 1 {
		t.Fatalf("alloc regression: exit %d, want 1", code)
	}
}

func TestDiffAllocsSetDrift(t *testing.T) {
	// A benchmark missing from either side is drift in both directions.
	base := writeSnap(t, "base.json", `{"BenchmarkA": {"allocs/op": 0}, "BenchmarkGone": {"allocs/op": 0}}`)
	fresh := writeSnap(t, "fresh.json", `{"BenchmarkA": {"allocs/op": 0}, "BenchmarkNew": {"allocs/op": 0}}`)
	if code := runDiffAllocs(base, fresh); code != 1 {
		t.Fatalf("benchmark-set drift: exit %d, want 1", code)
	}
}

func TestDiffAllocsBadFile(t *testing.T) {
	base := writeSnap(t, "base.json", `{"BenchmarkA": {"allocs/op": 0}}`)
	if code := runDiffAllocs(base, filepath.Join(t.TempDir(), "missing.json")); code != 2 {
		t.Fatalf("missing snapshot: exit %d, want 2", code)
	}
}

func TestTrendAppends(t *testing.T) {
	snap := writeSnap(t, "snap.json", `{"BenchmarkA": {"allocs/op": 0, "ns/op": 10}}`)
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	if code := runTrend(hist, "abc1234", snap, 0); code != 0 {
		t.Fatalf("first append: exit %d, want 0", code)
	}
	if code := runTrend(hist, "def5678", snap, 0); code != 0 {
		t.Fatalf("second append: exit %d, want 0", code)
	}
	raw, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("history has %d lines, want 2", len(lines))
	}
	wantCommits := []string{"abc1234", "def5678"}
	for i, line := range lines {
		var e trendEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if e.Commit != wantCommits[i] {
			t.Errorf("line %d commit = %q, want %q", i, e.Commit, wantCommits[i])
		}
		if _, err := time.Parse(time.RFC3339, e.Time); err != nil {
			t.Errorf("line %d time %q not RFC 3339: %v", i, e.Time, err)
		}
		if e.Benchmarks["BenchmarkA"]["allocs/op"] != 0 {
			t.Errorf("line %d lost the benchmark payload", i)
		}
	}
}

func TestTrendBadSnapshot(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	if code := runTrend(hist, "abc", filepath.Join(t.TempDir(), "missing.json"), 0); code != 2 {
		t.Fatalf("missing snapshot: exit %d, want 2", code)
	}
	if _, err := os.Stat(hist); !os.IsNotExist(err) {
		t.Fatal("history file created despite failed load")
	}
}

func TestTrendKeepRotates(t *testing.T) {
	snap := writeSnap(t, "snap.json", `{"BenchmarkA": {"allocs/op": 0}}`)
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	// Seven appends with a cap of 3: only the newest three commits survive.
	for i := 0; i < 7; i++ {
		if code := runTrend(hist, fmt.Sprintf("c%d", i), snap, 3); code != 0 {
			t.Fatalf("append %d: exit %d, want 0", i, code)
		}
	}
	raw, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("rotated history has %d lines, want 3:\n%s", len(lines), raw)
	}
	for i, want := range []string{"c4", "c5", "c6"} {
		var e trendEntry
		if err := json.Unmarshal([]byte(lines[i]), &e); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if e.Commit != want {
			t.Errorf("line %d commit = %q, want %q", i, e.Commit, want)
		}
	}
	// No rotation leftovers.
	if _, err := os.Stat(hist + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("rotation temp file left behind")
	}
	// Under the cap nothing is dropped.
	hist2 := filepath.Join(t.TempDir(), "hist2.jsonl")
	for i := 0; i < 2; i++ {
		if code := runTrend(hist2, fmt.Sprintf("c%d", i), snap, 3); code != 0 {
			t.Fatalf("append %d: exit %d, want 0", i, code)
		}
	}
	raw2, err := os.ReadFile(hist2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(string(raw2)), "\n")); got != 2 {
		t.Fatalf("uncapped history has %d lines, want 2", got)
	}
}
