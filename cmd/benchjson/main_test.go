package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays down a tiny annotated source tree and a bench snapshot,
// returning their paths.
func writeTree(t *testing.T, snapshot string) (src, snap string) {
	t.Helper()
	dir := t.TempDir()
	src = filepath.Join(dir, "src")
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	code := `package hot

//simlint:noalloc bench=BenchmarkHot.*
func hotPath() {}
`
	if err := os.WriteFile(filepath.Join(src, "hot.go"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	snap = filepath.Join(dir, "bench.json")
	if err := os.WriteFile(snap, []byte(snapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	return src, snap
}

func TestCheckNoallocClean(t *testing.T) {
	src, snap := writeTree(t, `{"BenchmarkHotLoop": {"allocs/op": 0, "ns/op": 12}}`)
	if code := runCheckNoalloc(src, snap); code != 0 {
		t.Fatalf("clean snapshot: exit %d, want 0", code)
	}
}

func TestCheckNoallocViolation(t *testing.T) {
	src, snap := writeTree(t, `{"BenchmarkHotLoop": {"allocs/op": 3, "ns/op": 12}}`)
	if code := runCheckNoalloc(src, snap); code != 1 {
		t.Fatalf("allocating snapshot: exit %d, want 1", code)
	}
}

func TestCheckNoallocMissingMetric(t *testing.T) {
	src, snap := writeTree(t, `{"BenchmarkHotLoop": {"ns/op": 12}}`)
	if code := runCheckNoalloc(src, snap); code != 1 {
		t.Fatalf("missing allocs/op: exit %d, want 1", code)
	}
}

func TestCheckNoallocDrift(t *testing.T) {
	// No benchmark matches the annotation: the bench suite drifted.
	src, snap := writeTree(t, `{"BenchmarkSomethingElse": {"allocs/op": 0}}`)
	if code := runCheckNoalloc(src, snap); code != 1 {
		t.Fatalf("drifted snapshot: exit %d, want 1", code)
	}
}
