// Command benchjson converts `go test -bench` output on stdin into a JSON
// object on stdout, keyed by benchmark name with one entry per reported
// metric (ns/op, B/op, allocs/op, and any custom ReportMetric units).
//
//	go test -run xxx -bench . -benchtime=1x -count=1 ./internal/sim/ | benchjson > BENCH_sim.json
//
// With -check-noalloc it instead audits an existing snapshot against the
// //simlint:noalloc bench=RE annotations in the source tree: every
// annotated hot path must have at least one matching benchmark in the
// snapshot, and every matching benchmark must report 0 allocs/op. This
// closes the loop between the static annotation (enforced by cmd/simlint)
// and the measured truth:
//
//	benchjson -check-noalloc BENCH_sim.json
//
// With -diff-allocs it compares the allocation profile of two snapshots
// (committed baseline vs freshly regenerated): every benchmark present in
// either must be present in both with identical allocs/op. Timing metrics
// are machine-dependent and deliberately ignored — allocation counts are
// the deterministic contract CI can diff across runners:
//
//	benchjson -diff-allocs BENCH_sim.json /tmp/BENCH_new.json
//
// With -trend it appends one JSON line per invocation to a history file —
// the snapshot keyed by commit (-commit, typically `git rev-parse --short
// HEAD` from the Makefile) and a UTC timestamp — turning repeated `make
// bench` runs into an append-only time series CI uploads as an artifact:
//
//	benchjson -trend BENCH_history.jsonl -commit abc1234 BENCH_sim.json
//
// -trend-keep N caps the history: after appending, the file is rotated
// down to its newest N entries (atomic temp-file + rename), so the series
// never grows without bound.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis/hotalloc"
)

func main() {
	checkNoalloc := flag.Bool("check-noalloc", false,
		"audit a bench JSON snapshot against //simlint:noalloc bench= annotations and exit non-zero on any violation")
	diffAllocs := flag.Bool("diff-allocs", false,
		"compare allocs/op between two snapshots (baseline, fresh) and exit non-zero on any difference")
	src := flag.String("src", ".",
		"source tree to scan for annotations (with -check-noalloc)")
	trend := flag.String("trend", "",
		"append the snapshot argument as one JSON line to this history file (BENCH_history.jsonl)")
	commit := flag.String("commit", "",
		"commit hash recorded in the -trend entry (empty = \"unknown\")")
	trendKeep := flag.Int("trend-keep", 0,
		"rotate the -trend history down to its last N entries after appending (0 = unbounded)")
	flag.Parse()

	if *checkNoalloc {
		file := flag.Arg(0)
		if file == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -check-noalloc needs a snapshot file argument (e.g. BENCH_sim.json)")
			os.Exit(2)
		}
		os.Exit(runCheckNoalloc(*src, file))
	}
	if *diffAllocs {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff-allocs needs two snapshot arguments: baseline fresh")
			os.Exit(2)
		}
		os.Exit(runDiffAllocs(flag.Arg(0), flag.Arg(1)))
	}
	if *trend != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -trend needs one snapshot argument (e.g. BENCH_sim.json)")
			os.Exit(2)
		}
		os.Exit(runTrend(*trend, *commit, flag.Arg(0), *trendKeep))
	}
	convert()
}

// trendEntry is one line of the append-only bench history.
type trendEntry struct {
	Time       string                        `json:"time"` // RFC 3339 UTC
	Commit     string                        `json:"commit"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// runTrend appends the snapshot as one JSON line to the history file, then
// rotates the file down to its newest `keep` entries when a cap is set.
// Returns the process exit code.
func runTrend(histFile, commit, snapFile string, keep int) int {
	snap, err := loadSnapshot(snapFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if commit == "" {
		commit = "unknown"
	}
	line, err := json.Marshal(trendEntry{
		Time:       time.Now().UTC().Format(time.RFC3339),
		Commit:     commit,
		Benchmarks: snap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	f, err := os.OpenFile(histFile, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if keep > 0 {
		dropped, err := rotateTrend(histFile, keep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: rotated %s: dropped %d oldest entries (keeping %d)\n",
				histFile, dropped, keep)
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d benchmark(s) at %s to %s\n", len(snap), commit, histFile)
	return 0
}

// rotateTrend truncates the history to its last `keep` lines, atomically
// (write a sibling temp file, then rename over) so a crash mid-rotation
// never loses the history. Returns how many lines were dropped.
func rotateTrend(histFile string, keep int) (int, error) {
	raw, err := os.ReadFile(histFile)
	if err != nil {
		return 0, err
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) <= keep {
		return 0, nil
	}
	kept := lines[len(lines)-keep:]
	tmp := histFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, histFile); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return 0, err
	}
	return len(lines) - keep, nil
}

// loadSnapshot reads one benchjson output file.
func loadSnapshot(file string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var snap map[string]map[string]float64
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("parse %s: %v", file, err)
	}
	return snap, nil
}

// runDiffAllocs returns the process exit code: 0 when both snapshots cover
// the same benchmarks with identical allocs/op, 1 on any allocation drift or
// benchmark-set drift, 2 on operational errors.
func runDiffAllocs(baseFile, freshFile string) int {
	base, err := loadSnapshot(baseFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	fresh, err := loadSnapshot(freshFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	bad := 0
	for name, bm := range base {
		fm, ok := fresh[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s present in baseline %s but missing from %s (bench removed without regenerating the baseline?)\n",
				name, baseFile, freshFile)
			bad++
			continue
		}
		if ba, fa := bm["allocs/op"], fm["allocs/op"]; ba != fa {
			fmt.Fprintf(os.Stderr, "benchjson: %s allocs/op drifted: baseline %s has %g, fresh %s has %g\n",
				name, baseFile, ba, freshFile, fa)
			bad++
		}
	}
	for name := range fresh {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s present in fresh %s but missing from baseline %s (new bench: regenerate and commit the baseline)\n",
				name, freshFile, baseFile)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d allocation diff(s) vs baseline\n", bad)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) match the baseline allocation profile\n", len(base))
	return 0
}

// runCheckNoalloc returns the process exit code: 0 when every annotated
// path is measured at 0 allocs/op, 1 on any violation or drift.
func runCheckNoalloc(src, file string) int {
	rules, err := hotalloc.ScanBenchRules(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if len(rules) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no %s bench= annotations under %s: nothing to check\n", hotalloc.Directive, src)
		return 2
	}
	snap, err := loadSnapshot(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	bad := 0
	for _, rule := range rules {
		matched := 0
		for name, metrics := range snap {
			if !rule.Pattern.MatchString(name) {
				continue
			}
			matched++
			allocs, ok := metrics["allocs/op"]
			switch {
			case !ok:
				fmt.Fprintf(os.Stderr, "benchjson: %s: %s matches noalloc path %s (%s) but reports no allocs/op metric\n",
					file, name, rule.Func, rule.Pos)
				bad++
			case allocs > 0:
				fmt.Fprintf(os.Stderr, "benchjson: %s: %s reports %g allocs/op but %s is annotated %s (%s)\n",
					file, name, allocs, rule.Func, hotalloc.Directive, rule.Pos)
				bad++
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark in %s matches bench=%s on %s (%s): annotation drifted from the bench suite\n",
				file, rule.Pattern, rule.Func, rule.Pos)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d noalloc violation(s)\n", bad)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d noalloc annotation(s) verified against %s\n", len(rules), file)
	return 0
}

func convert() {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // echo so the run stays readable
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// fields: Name N  v1 unit1  v2 unit2 ...
		name := strings.SplitN(fields[0], "-", 2)[0] // strip -GOMAXPROCS suffix
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m := map[string]float64{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = v
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out) == 0 {
		// An upstream failure (build error, -run filter eating everything)
		// must not silently produce an empty baseline file.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin (expected `go test -bench` output)")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
