// Command benchjson converts `go test -bench` output on stdin into a JSON
// object on stdout, keyed by benchmark name with one entry per reported
// metric (ns/op, B/op, allocs/op, and any custom ReportMetric units).
//
//	go test -run xxx -bench . -benchtime=1x -count=1 ./internal/sim/ | benchjson > BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // echo so the run stays readable
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// fields: Name N  v1 unit1  v2 unit2 ...
		name := strings.SplitN(fields[0], "-", 2)[0] // strip -GOMAXPROCS suffix
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m := map[string]float64{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = v
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out) == 0 {
		// An upstream failure (build error, -run filter eating everything)
		// must not silently produce an empty baseline file.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin (expected `go test -bench` output)")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
