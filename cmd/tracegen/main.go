// Command tracegen generates and inspects the synthetic benchmark traces:
// it prints the instruction mix, dependence-chain statistics, and optionally
// a disassembly-style listing of the first uops, and verifies value
// consistency with the in-order checker.
//
//	tracegen -bench mcf -n 50000
//	tracegen -bench omnetpp -dump 40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "mcf", "benchmark profile name")
	n := flag.Int("n", 50000, "uops to generate")
	seed := flag.Uint64("seed", 1, "trace seed")
	dump := flag.Int("dump", 0, "print the first N uops")
	check := flag.Bool("check", true, "verify value consistency")
	out := flag.String("o", "", "write the generated trace to this file (binary format)")
	in := flag.String("i", "", "read a binary trace instead of generating")
	flag.Parse()

	prof, err := trace.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		fmt.Fprintln(os.Stderr, "available:", trace.AllNames())
		os.Exit(1)
	}

	var uops []isa.Uop
	var st trace.GenStats
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		uops, err = trace.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		// Rebuild mix counters from the stream itself.
		st.Uops = uint64(len(uops))
		for i := range uops {
			switch uops[i].Op.Class() {
			case isa.ClassLoad:
				st.Loads++
			case isa.ClassStore:
				st.Stores++
			case isa.ClassBranch:
				st.Branches++
			}
		}
	} else {
		g := trace.NewGenerator(prof, *seed)
		uops = make([]isa.Uop, 0, *n)
		for i := 0; i < *n; i++ {
			u, _ := g.Next()
			uops = append(uops, u)
		}
		st = g.Stats()
	}
	iss := trace.NewISS()
	for i := range uops {
		if i < *dump {
			fmt.Println(" ", uops[i].String())
		}
		if *check {
			if err := iss.Step(&uops[i]); err != nil {
				fmt.Fprintf(os.Stderr, "consistency violation at uop %d: %v\n", i, err)
				os.Exit(1)
			}
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := trace.WriteTrace(f, uops); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d uops to %s\n", len(uops), *out)
	}

	fmt.Printf("benchmark %s (memIntensive=%v), %d uops, seed %d\n", prof.Name, prof.MemIntensive, st.Uops, *seed)
	fmt.Printf("  loads    %-8d (%.1f%%)\n", st.Loads, 100*float64(st.Loads)/float64(st.Uops))
	fmt.Printf("  stores   %-8d (%.1f%%)\n", st.Stores, 100*float64(st.Stores)/float64(st.Uops))
	fmt.Printf("  branches %-8d (%.1f%%)\n", st.Branches, 100*float64(st.Branches)/float64(st.Uops))
	fmt.Printf("  chase episodes %d, pointer loads %d, sibling loads %d, chain spills %d\n",
		st.ChaseEpisodes, st.ChaseLoads, st.SiblingLoads, st.ChainSpills)
	if st.DepChainLinks > 0 {
		fmt.Printf("  dependence chains: %d links, %.1f ALU ops between misses (paper Fig. 6 band: 6-12)\n",
			st.DepChainLinks, float64(st.DepChainOps)/float64(st.DepChainLinks))
	} else {
		fmt.Println("  no dependent-miss chains (streaming workload)")
	}
	if *check {
		fmt.Println("  value consistency: OK")
	}
}
