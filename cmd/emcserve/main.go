// Command emcserve runs the simulation service: the sharded job scheduler
// and content-addressed result cache from internal/service, behind an HTTP
// API. Sweep drivers submit configurations as JSON jobs; identical
// configurations coalesce in flight and hit the cache afterwards.
//
// Examples:
//
//	emcserve -addr 127.0.0.1:8080 -workers 4
//	emcserve -cache-dir /var/lib/emcsim/cache   # results survive restarts
//	emcctl -server http://127.0.0.1:8080 submit -bench mcf,mcf,mcf,mcf -emc -wait
//
// SIGINT/SIGTERM drain gracefully: intake stops, queued and running jobs
// finish (bounded by -drain-timeout), then the process exits. A second
// signal cancels everything still running. With -cache-dir the durable
// result cache is flushed before exit, and the final log line reports the
// disposition of jobs that did not finish: cacheable jobs are resumable (an
// identical resubmit recomputes or reloads them), uncacheable ones are lost.
//
// Fault injection: EMCSIM_FAILPOINTS="site=policy;..." arms failpoints at
// boot (see internal/fault for the site catalog and policy grammar).
//
// Cluster mode (-node-id) turns the process into one node of a sweep
// fabric (see internal/cluster and DESIGN.md §15): submissions to any node
// route to the key's consistent-hash owner, results replicate across the
// fabric as durable EMCR records, and idle nodes steal queued work:
//
//	emcserve -addr 127.0.0.1:8081 -node-id a
//	emcserve -addr 127.0.0.1:8082 -node-id b -join http://127.0.0.1:8081
//	emcserve -addr 127.0.0.1:8083 -node-id c -join http://127.0.0.1:8081
//
// Membership is either bootstrapped from a running member (-join URL) or
// declared statically (-peers id=url,id=url). -advertise overrides the URL
// peers use to reach this node (defaults to http://<addr>).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "worker goroutines / queue shards (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue-cap", 64, "max queued jobs before submissions get 429")
	cacheCap := flag.Int("cache-cap", 256, "result cache entries (LRU)")
	retries := flag.Int("max-retries", 2, "retries after a worker panic before a job fails")
	cacheDir := flag.String("cache-dir", "", "durable result cache directory (empty = in-memory only)")
	hungTimeout := flag.Duration("hung-timeout", 0, "mark running jobs hung after this much progress silence (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	flightDir := flag.String("flight-dir", "", "write flight-recorder dumps (.emfr) here on hang/panic/failure (empty = off)")
	flightEvents := flag.Int("flight-events", 0, "per-job flight-recorder ring capacity (0 = default 256)")
	spanRetain := flag.Int("span-retain", 0, "finished spans retained for /api/v1/trace (0 = default 4096)")
	nodeID := flag.String("node-id", "", "cluster node id (empty = single-process mode)")
	advertise := flag.String("advertise", "", "base URL peers use to reach this node (default http://<addr>)")
	join := flag.String("join", "", "bootstrap membership from this member URL (comma-separated URLs tried in order)")
	peers := flag.String("peers", "", "static membership as id=url,id=url (alternative to -join)")
	heartbeat := flag.Duration("heartbeat", time.Second, "cluster heartbeat interval")
	suspect := flag.Duration("suspect-after", 0, "mark peers dead after this much heartbeat silence (0 = 4x heartbeat)")
	stealThreshold := flag.Int("steal-threshold", 2, "peer queue depth that makes an idle node steal work")
	antiEntropy := flag.Duration("anti-entropy-interval", 30*time.Second, "anti-entropy digest-exchange cadence (negative = off)")
	ringWeight := flag.Int("ring-weight", 1, "this node's ring weight (virtual-point multiplier for heterogeneous nodes)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive peer failures that trip the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit duration before a half-open probe (jittered +/-25%)")
	clusterToken := flag.String("cluster-token", "", "shared bearer token guarding /api/v1/cluster/* (empty = no auth)")
	flag.Parse()

	if err := fault.EnableFromSpec(os.Getenv("EMCSIM_FAILPOINTS")); err != nil {
		fmt.Fprintln(os.Stderr, "emcserve:", err)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	svc, err := service.Open(service.Config{
		Workers:      *workers,
		QueueCap:     *queueCap,
		CacheCap:     *cacheCap,
		MaxRetries:   *retries,
		CacheDir:     *cacheDir,
		HungTimeout:  *hungTimeout,
		Metrics:      reg,
		FlightDir:    *flightDir,
		FlightEvents: *flightEvents,
		SpanRetain:   *spanRetain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "emcserve:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		st := svc.Stats()
		fmt.Printf("emcserve: durable cache %s: %d results loaded, %d quarantined\n",
			*cacheDir, st.CacheLoaded, st.CacheQuarantined)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emcserve:", err)
		os.Exit(1)
	}

	// Cluster mode: wrap the service in a fabric node and swap in the
	// cluster handler (which routes client submits and adds the inter-node
	// endpoints). Single-process mode is byte-for-byte the old server.
	handler := service.NewHandler(svc, reg)
	var node *cluster.Node
	if *nodeID != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		node = cluster.New(svc, cluster.Options{
			ID:                  *nodeID,
			Addr:                adv,
			HeartbeatInterval:   *heartbeat,
			SuspectAfter:        *suspect,
			StealThreshold:      *stealThreshold,
			AntiEntropyInterval: *antiEntropy,
			Weight:              *ringWeight,
			BreakerThreshold:    *breakerThreshold,
			BreakerCooldown:     *breakerCooldown,
		})
		tr := cluster.NewHTTPTransport(node.MemberAddr)
		tr.Token = *clusterToken
		tr.Self = *nodeID
		node.SetTransport(tr)
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p == "" {
				continue
			}
			id, url, ok := strings.Cut(p, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "emcserve: bad -peers entry %q (want id=url)\n", p)
				os.Exit(1)
			}
			node.AddMember(cluster.Member{ID: id, Addr: url})
		}
		self := cluster.Member{ID: *nodeID, Addr: adv, Weight: *ringWeight}
		for _, u := range strings.Split(*join, ",") {
			if u = strings.TrimSpace(u); u == "" {
				continue
			}
			joinCtx, joinCancel := context.WithTimeout(context.Background(), 10*time.Second)
			members, err := tr.JoinAddr(joinCtx, u, self)
			joinCancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "emcserve: join %s: %v\n", u, err)
				continue
			}
			for _, m := range members {
				node.AddMember(m)
			}
		}
		node.Start()
		fmt.Printf("emcserve: cluster node %s advertising %s (%d members known)\n",
			*nodeID, adv, len(node.Members()))
		handler = cluster.NewHandler(node, reg, *clusterToken)
	}

	srv := &http.Server{Handler: handler}
	// The bound address line is parsed by scripts (make serve-smoke); keep
	// its shape stable.
	fmt.Printf("emcserve listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "emcserve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("emcserve: %v: draining (repeat to cancel running jobs)\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigc
		fmt.Println("emcserve: second signal: cancelling running jobs")
		cancel()
	}()
	if node != nil {
		node.Close() // stop fabric loops before the scheduler drains
	}
	if err := svc.Drain(ctx); err != nil {
		svc.Close()
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	srv.Shutdown(shutCtx) //nolint:errcheck // exiting anyway

	// Disposition of jobs that did not reach done: cacheable jobs are
	// resumable — resubmitting the same configuration is idempotent (it
	// reloads from the durable cache or deterministically recomputes) —
	// while uncacheable jobs (function-valued configs) are lost with the
	// process. The final line is the crash-recovery audit trail.
	var resumable, lost int
	for _, js := range svc.Jobs() {
		if js.State.Terminal() && js.State != service.StateCancelled {
			continue // done and failed jobs ran to their verdict
		}
		if strings.HasPrefix(js.Key, "uncacheable:") {
			lost++
		} else {
			resumable++
		}
	}
	st := svc.Stats()
	durable := "no durable cache"
	if *cacheDir != "" {
		durable = fmt.Sprintf("durable cache flushed (%d records persisted, %d persist errors)",
			st.CachePersisted, st.CachePersistErrs)
	}
	fmt.Printf("emcserve: shutdown: %d done, %d failed, %d cancelled; in-flight: %d resumable, %d lost; %s\n",
		st.Done, st.Failed, st.Cancelled, resumable, lost, durable)
}
