// Command emcserve runs the simulation service: the sharded job scheduler
// and content-addressed result cache from internal/service, behind an HTTP
// API. Sweep drivers submit configurations as JSON jobs; identical
// configurations coalesce in flight and hit the cache afterwards.
//
// Examples:
//
//	emcserve -addr 127.0.0.1:8080 -workers 4
//	emcctl -server http://127.0.0.1:8080 submit -bench mcf,mcf,mcf,mcf -emc -wait
//
// SIGINT/SIGTERM drain gracefully: intake stops, queued and running jobs
// finish (bounded by -drain-timeout), then the process exits. A second
// signal cancels everything still running.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "worker goroutines / queue shards (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue-cap", 64, "max queued jobs before submissions get 429")
	cacheCap := flag.Int("cache-cap", 256, "result cache entries (LRU)")
	retries := flag.Int("max-retries", 2, "retries after a worker panic before a job fails")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	flag.Parse()

	reg := obs.NewRegistry()
	svc := service.New(service.Config{
		Workers:    *workers,
		QueueCap:   *queueCap,
		CacheCap:   *cacheCap,
		MaxRetries: *retries,
		Metrics:    reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emcserve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: service.NewHandler(svc, reg)}
	// The bound address line is parsed by scripts (make serve-smoke); keep
	// its shape stable.
	fmt.Printf("emcserve listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "emcserve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("emcserve: %v: draining (repeat to cancel running jobs)\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigc
		fmt.Println("emcserve: second signal: cancelling running jobs")
		cancel()
	}()
	if err := svc.Drain(ctx); err != nil {
		svc.Close()
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	srv.Shutdown(shutCtx) //nolint:errcheck // exiting anyway
	st := svc.Stats()
	fmt.Printf("emcserve: drained: %d done, %d failed, %d cancelled, %d cache hits\n",
		st.Done, st.Failed, st.Cancelled, st.CacheHits)
}
