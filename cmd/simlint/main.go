// Command simlint is the multichecker driver for the repo's custom static
// analyzers. It mechanically enforces the invariants the simulator's
// correctness story rests on:
//
//	nondeterminism   no wall clocks, global randomness, or order-leaking
//	                 map iteration in simulation-state packages
//	hotalloc         //simlint:noalloc functions contain no
//	                 allocation-inducing constructs
//	failpoint        fault.Register sites are unique constants from the
//	                 internal/fault/sites.go registry
//	atomichygiene    no mixed plain/atomic access, no by-value copies of
//	                 sync/atomic types
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -run nondeterminism,hotalloc ./internal/sim/...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"os"

	"repro/internal/analysis/atomichygiene"
	"repro/internal/analysis/failpoint"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/nondeterminism"
)

func main() {
	framework.Exit(framework.Main(os.Stderr, os.Args[1:], []*framework.Analyzer{
		nondeterminism.Analyzer,
		hotalloc.Analyzer,
		failpoint.Analyzer,
		atomichygiene.Analyzer,
	}))
}
