// Command simlint is the multichecker driver for the repo's custom static
// analyzers. It mechanically enforces the invariants the simulator's
// correctness story rests on:
//
//	nondeterminism   no wall clocks, global randomness, or order-leaking
//	                 map iteration in simulation-state packages
//	hotalloc         //simlint:noalloc functions contain no
//	                 allocation-inducing constructs
//	failpoint        fault.Register sites are unique constants from the
//	                 internal/fault/sites.go registry
//	atomichygiene    no mixed plain/atomic access (module-wide), no
//	                 by-value copies of sync/atomic types
//	dettaint         nondeterminism taint (clocks, entropy, select
//	                 interleaving, map order) must not reach result sinks
//	                 — tracked across package boundaries
//	lockorder        no cycles in the service/cluster mutex
//	                 acquisition-order graph (potential deadlocks)
//	goroutineleak    every service/cluster goroutine has a reachable stop
//	                 path, so Close/Drain joins cannot hang
//	floatdet         no float re-accumulation in map-order or
//	                 goroutine-order dependent loops
//
// The last four run on the cross-package dataflow IR
// (internal/analysis/framework/ir.go): facts propagate over the module
// call graph, so a clock read three calls and two packages away from a
// sim.Result still reports.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -run nondeterminism,hotalloc ./internal/sim/...
//	go run ./cmd/simlint -json ./...   # NDJSON findings for CI
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"os"

	"repro/internal/analysis/atomichygiene"
	"repro/internal/analysis/dettaint"
	"repro/internal/analysis/failpoint"
	"repro/internal/analysis/floatdet"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/goroutineleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nondeterminism"
)

func main() {
	// Findings go to stdout so CI can pipe -json output straight into jq;
	// the exit code carries the verdict either way.
	framework.Exit(framework.Main(os.Stdout, os.Args[1:], []*framework.Analyzer{
		nondeterminism.Analyzer,
		hotalloc.Analyzer,
		failpoint.Analyzer,
		atomichygiene.Analyzer,
		dettaint.Analyzer,
		lockorder.Analyzer,
		goroutineleak.Analyzer,
		floatdet.Analyzer,
	}))
}
