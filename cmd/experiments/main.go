// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them as ASCII tables (optionally writing a
// markdown report).
//
//	experiments                    # all figures at CI-sized run lengths
//	experiments -n 100000          # longer runs (closer to the paper's scale)
//	experiments -only Fig12,Fig18  # a subset
//	experiments -md results.md     # also write a markdown report
//	experiments -only Obs -trace t.json   # lifecycle traces (Perfetto)
//	experiments -http 127.0.0.1:8080      # live /metrics while the suite runs
//	experiments -jobs 4                   # route runs through the job scheduler
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	n := flag.Uint64("n", 24000, "instructions per core (quad-core runs)")
	n8 := flag.Uint64("n8", 12000, "instructions per core (eight-core runs)")
	seed := flag.Uint64("seed", 1, "trace seed")
	par := flag.Int("p", 0, "parallel simulations (deprecated alias for -parallel)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
	only := flag.String("only", "", "comma-separated figure ids (e.g. Fig12,Fig18); empty = all")
	md := flag.String("md", "", "write a markdown report to this file")
	traceOut := flag.String("trace", "", "write a merged Chrome trace_event JSON of every run to this file")
	traceSample := flag.Uint64("trace-sample", 64, "with -trace, trace one in N requests per run")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the suite runs")
	jobs := flag.Int("jobs", 0, "route every run through the service scheduler with this many workers (coalesces and caches duplicate configs)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *jobs > 0 && *traceOut != "" {
		fmt.Fprintln(os.Stderr, "experiments: -jobs cannot retain lifecycle traces; drop -trace or -jobs")
		os.Exit(1)
	}

	stopProfiling, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	opts := figures.DefaultOptions()
	opts.InstrPerCore = *n
	opts.InstrPerCore8 = *n8
	opts.Seed = *seed
	opts.Parallel = *parallel
	if *par > 0 {
		opts.Parallel = *par
	}
	if *traceOut != "" {
		opts.Trace = obs.Config{Enabled: true, SampleEvery: *traceSample, Retain: true}
	}
	var srv *obs.Server
	if *httpAddr != "" {
		opts.Metrics = obs.NewRegistry()
		srv, err = obs.StartServer(*httpAddr, opts.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug server listening on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	var svc *service.Service
	if *jobs > 0 {
		svc = service.New(service.Config{
			Workers:  *jobs,
			QueueCap: 4096, // the suite fans out from Parallel goroutines; never backpressure it
			CacheCap: 1024,
			Metrics:  opts.Metrics,
		})
		opts.Runner = func(cfg sim.Config) (*sim.Result, error) {
			return svc.Run(context.Background(), "experiments", cfg)
		}
	}
	suite := figures.NewSuite(opts)

	runners := []struct {
		id  string
		run func() (*figures.Table, error)
	}{
		{"Fig1", suite.Fig1},
		{"Fig2", suite.Fig2},
		{"Fig3", suite.Fig3},
		{"Fig6", suite.Fig6},
		{"Fig12", suite.Fig12},
		{"Fig13", suite.Fig13},
		{"Fig14", suite.Fig14},
		{"Fig15", suite.Fig15},
		{"Fig16", suite.Fig16},
		{"Fig17", suite.Fig17},
		{"Fig18", suite.Fig18},
		{"Fig19", suite.Fig19},
		{"Fig20", suite.Fig20},
		{"Fig21", suite.Fig21},
		{"Fig22", suite.Fig22},
		{"Sec6.5", suite.Overhead},
		{"Fig23", suite.Fig23},
		{"Fig24", suite.Fig24},
		{"ExtRA", suite.ExtRunahead},
		{"WS", suite.WeightedSpeedup},
		{"Obs", suite.FigObs},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var report strings.Builder
	report.WriteString("# Reproduction results\n\n")
	fmt.Fprintf(&report, "Run: n=%d (quad), n8=%d (eight), seed=%d, %s\n\n",
		*n, *n8, *seed, time.Now().Format(time.RFC3339))

	start := time.Now()
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t0 := time.Now()
		tab, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			stopProfiling()
			os.Exit(1)
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s in %.1fs)\n\n", r.id, time.Since(t0).Seconds())
		report.WriteString(tab.Markdown())
		report.WriteString("\n")
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
	if svc != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if err := svc.Drain(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: drain:", err)
		}
		cancel()
		st := svc.Stats()
		fmt.Printf("scheduler: %d submitted, %d simulated, %d coalesced, %d cache hits\n",
			st.Submitted, st.Done-st.CacheHits, st.Coalesced, st.CacheHits)
	}
	stopProfiling()

	if *traceOut != "" {
		if err := suite.TraceExport().WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "write trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d runs)\n", *traceOut, suite.TraceExport().Runs())
	}

	if *md != "" {
		if err := os.WriteFile(*md, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write report:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *md)
	}
}
