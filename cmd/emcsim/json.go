package main

import (
	emcsim "repro"
	"repro/internal/obs"
)

// jsonResult is the stable machine-readable shape emitted by -json: derived
// metrics plus the per-core and system counters, without internal config.
type jsonResult struct {
	Cycles uint64  `json:"cycles"`
	AvgIPC float64 `json:"avgIPC"`

	Cores []jsonCore `json:"cores"`

	CoreMissLatency float64 `json:"coreMissLatency"`
	EMCMissLatency  float64 `json:"emcMissLatency,omitempty"`
	EMCMissFraction float64 `json:"emcMissFraction,omitempty"`
	EMCCacheHitRate float64 `json:"emcCacheHitRate,omitempty"`
	RowConflictRate float64 `json:"rowConflictRate"`

	DRAMDemandReads uint64 `json:"dramDemandReads"`
	DRAMPrefetch    uint64 `json:"dramPrefetchReads"`
	DRAMEMCReads    uint64 `json:"dramEMCReads"`
	DRAMWrites      uint64 `json:"dramWrites"`

	PrefetchIssued uint64 `json:"prefetchIssued,omitempty"`
	PrefetchUseful uint64 `json:"prefetchUseful,omitempty"`

	EnergyTotalJ float64 `json:"energyTotalJ"`
	EnergyChipJ  float64 `json:"energyChipJ"`
	EnergyDRAMJ  float64 `json:"energyDRAMJ"`

	Obs *jsonObs `json:"obs,omitempty"`
}

// jsonObs summarizes lifecycle tracing: sampling, volume, and the per-source
// latency attribution (average cycles per miss by component).
type jsonObs struct {
	SampleEvery uint64 `json:"sampleEvery"`
	Records     uint64 `json:"records"`
	Events      uint64 `json:"events"`

	Core *jsonAttr `json:"core,omitempty"`
	EMC  *jsonAttr `json:"emc,omitempty"`
}

type jsonAttr struct {
	Count      uint64             `json:"count"`
	MeanTotal  float64            `json:"meanTotal"`
	MeanOnChip float64            `json:"meanOnChip"`
	MeanMemory float64            `json:"meanMemory"`
	Components map[string]float64 `json:"components"`
}

func attrJSON(a *obs.SourceAttr) *jsonAttr {
	if a.Count == 0 {
		return nil
	}
	out := &jsonAttr{
		Count:      a.Count,
		MeanTotal:  a.MeanTotal(),
		MeanOnChip: float64(a.OnChipSum()) / float64(a.Count),
		MeanMemory: float64(a.MemSum()) / float64(a.Count),
		Components: map[string]float64{},
	}
	for c := obs.Component(0); c < obs.NumComponents; c++ {
		out.Components[c.String()] = a.MeanComp(c)
	}
	return out
}

type jsonCore struct {
	Benchmark       string  `json:"benchmark"`
	IPC             float64 `json:"ipc"`
	Retired         uint64  `json:"retired"`
	Loads           uint64  `json:"loads"`
	Stores          uint64  `json:"stores"`
	LLCMisses       uint64  `json:"llcMisses"`
	DependentMisses uint64  `json:"dependentMisses"`
	ChainsGenerated uint64  `json:"chainsGenerated"`
	ChainsAborted   uint64  `json:"chainsAborted"`
}

func resultJSON(r *emcsim.Result) jsonResult {
	out := jsonResult{
		Cycles:          r.Cycles,
		AvgIPC:          r.AvgIPC(),
		CoreMissLatency: r.CoreMissLatency(),
		EMCMissLatency:  r.EMCMissLatency(),
		EMCMissFraction: r.EMCMissFraction(),
		EMCCacheHitRate: r.EMCCacheHitRate(),
		RowConflictRate: r.RowConflictRate(),
		DRAMDemandReads: r.Sys.DRAMDemandReads,
		DRAMPrefetch:    r.Sys.DRAMPrefetch,
		DRAMEMCReads:    r.Sys.DRAMEMCReads,
		DRAMWrites:      r.Sys.DRAMWrites,
		PrefetchIssued:  r.PrefetchIssued,
		PrefetchUseful:  r.PrefetchUseful,
		EnergyTotalJ:    r.Energy.Total(),
		EnergyChipJ:     r.Energy.Chip(),
		EnergyDRAMJ:     r.Energy.DRAMStatic + r.Energy.DRAMDynamic,
	}
	for _, c := range r.Cores {
		out.Cores = append(out.Cores, jsonCore{
			Benchmark:       c.Benchmark,
			IPC:             c.IPC,
			Retired:         c.Stats.Retired,
			Loads:           c.Stats.Loads,
			Stores:          c.Stats.Stores,
			LLCMisses:       c.Stats.LLCMissLoads,
			DependentMisses: c.Stats.DependentMissLoads,
			ChainsGenerated: c.Stats.ChainsGenerated,
			ChainsAborted:   c.Stats.ChainAborts,
		})
	}
	if r.Obs != nil {
		out.Obs = &jsonObs{
			SampleEvery: r.Obs.SampleEvery,
			Records:     r.Obs.Finished,
			Events:      r.Obs.Events,
			Core:        attrJSON(&r.Obs.Attr.Core),
			EMC:         attrJSON(&r.Obs.Attr.EMC),
		}
	}
	return out
}
