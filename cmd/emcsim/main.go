// Command emcsim runs one workload on one system configuration and prints a
// summary: per-core IPC, memory-system behaviour, EMC activity, and energy.
//
// Examples:
//
//	emcsim -bench mcf,sphinx3,soplex,libquantum -emc -n 50000
//	emcsim -bench mcf,mcf,mcf,mcf -pf ghb -emc
//	emcsim -bench mcf,mcf,mcf,mcf,mcf,mcf,mcf,mcf -mcs 2 -emc
//	emcsim -emc -trace trace.json            # lifecycle trace (Perfetto)
//	emcsim -emc -http 127.0.0.1:0 -http-linger 30s   # live /metrics
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	emcsim "repro"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/report"
)

func main() {
	bench := flag.String("bench", "mcf,sphinx3,soplex,libquantum", "comma-separated benchmarks, one per core (4 or 8)")
	pf := flag.String("pf", "none", "prefetcher: none|ghb|stream|markov+stream")
	emc := flag.Bool("emc", false, "enable the Enhanced Memory Controller")
	mcs := flag.Int("mcs", 1, "memory controllers (8-core only: 1 or 2)")
	n := flag.Uint64("n", 30000, "instructions per core")
	seed := flag.Uint64("seed", 1, "trace seed")
	ideal := flag.Bool("ideal-dep-hits", false, "serve dependent misses at LLC-hit latency (Fig. 2 idealization)")
	runahead := flag.Bool("runahead", false, "enable the runahead-execution baseline")
	chains := flag.Int("chains", 0, "print the first N dependence chains shipped to the EMC")
	hist := flag.Bool("hist", false, "print miss-latency histograms")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON instead of text")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of sampled request lifecycles to this file")
	traceSample := flag.Uint64("trace-sample", 1, "trace one in N memory requests (deterministic)")
	attr := flag.Bool("attr", false, "collect and print the latency-attribution breakdown (implied by -trace)")
	counters := flag.String("counters", "", "write an interval counter time series (JSON) to this file")
	countersInterval := flag.Uint64("counters-interval", 10000, "counter sampling interval in cycles")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:0)")
	httpLinger := flag.Duration("http-linger", 0, "keep the -http server up this long after the run finishes")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	stopProfiling, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emcsim:", err)
		os.Exit(1)
	}
	defer stopProfiling()

	if *list {
		fmt.Println("high intensity:", strings.Join(emcsim.HighIntensityBenchmarks(), " "))
		fmt.Println("all:", strings.Join(emcsim.Benchmarks(), " "))
		return
	}

	benchmarks := strings.Split(*bench, ",")
	var cfg emcsim.SystemConfig
	if len(benchmarks) >= 8 {
		cfg = emcsim.EightCore(emcsim.PrefetcherKind(*pf), *emc, *mcs)
	} else {
		cfg = emcsim.QuadCore(emcsim.PrefetcherKind(*pf), *emc)
	}
	cfg.IdealDependentHits = *ideal
	cfg.RunaheadEnabled = *runahead
	if *chains > 0 {
		left := *chains
		cfg.OnChain = func(ch *cpu.Chain) {
			if left <= 0 {
				return
			}
			left--
			fmt.Printf("chain core%d srcPC=%#x line=%#x uops=%d live-ins=%d mispredict=%v\n",
				ch.CoreID, ch.SourcePC, ch.SourceLine, len(ch.Uops), len(ch.LiveIns), ch.HasMispredict)
			for i, cu := range ch.Uops {
				fmt.Printf("  [%2d] E%-2d <- %v\n", i, cu.DstEPR, cu.U.String())
			}
		}
	}

	if *traceOut != "" || *attr {
		cfg.Obs = obs.Config{Enabled: true, SampleEvery: *traceSample, Retain: *traceOut != ""}
	}
	if *counters != "" {
		cfg.CounterInterval = *countersInterval
	}
	var srv *obs.Server
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		cfg.MetricsLabels = map[string]string{"run": *bench}
		srv, err = obs.StartServer(*httpAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "emcsim:", err)
			stopProfiling()
			os.Exit(1)
		}
		defer srv.Close()
		// The bound address line is parsed by scripts (make trace-smoke);
		// keep its shape stable.
		fmt.Printf("debug server listening on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}

	sys, err := emcsim.NewSystem(cfg, emcsim.Workload{
		Name: "cli", Benchmarks: benchmarks, InstrPerCore: *n, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "emcsim:", err)
		stopProfiling()
		os.Exit(1)
	}
	// SIGINT/SIGTERM cancel the run at the next cycle boundary; the partial
	// statistics are still summarized and the exit status is non-zero. A
	// second signal kills the process immediately.
	h := sys.NewRunHandle(0, nil)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "emcsim: signal received, cancelling at next cycle boundary (repeat to kill)")
		h.Cancel()
		<-sigc
		os.Exit(130)
	}()
	res, err := h.Run()
	signal.Stop(sigc)
	cancelled := errors.Is(err, emcsim.ErrCancelled)
	if err != nil && !cancelled {
		fmt.Fprintln(os.Stderr, "emcsim:", err)
		stopProfiling()
		os.Exit(1)
	}

	if *traceOut != "" {
		exp := &obs.ChromeExport{}
		exp.Add(*bench, sys.Tracer())
		if err := exp.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "emcsim: write trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", *traceOut, len(sys.Tracer().Records()))
	}
	if *counters != "" {
		if err := sys.CounterLog().WriteFile(*counters); err != nil {
			fmt.Fprintln(os.Stderr, "emcsim: write counters:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *counters)
	}
	linger := func() {
		if srv != nil && *httpLinger > 0 {
			fmt.Printf("lingering %s for debug-server scrapes\n", *httpLinger)
			time.Sleep(*httpLinger)
		}
	}

	if *jsonOut {
		out := report.New(res)
		out.Cancelled = cancelled
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "emcsim:", err)
			os.Exit(1)
		}
		linger()
		if cancelled {
			stopProfiling()
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload: %s   pf=%s emc=%v mcs=%d n=%d\n", *bench, *pf, *emc, *mcs, *n)
	if cancelled {
		fmt.Printf("run cancelled by signal: partial statistics follow\n")
	}
	fmt.Printf("cycles: %d   avg IPC: %.4f\n\n", res.Cycles, res.AvgIPC())
	for _, c := range res.Cores {
		fmt.Printf("  core %-12s IPC %.4f  loads %-6d LLCmiss %-5d dep %-5d chains %d\n",
			c.Benchmark, c.IPC, c.Stats.Loads, c.Stats.LLCMissLoads,
			c.Stats.DependentMissLoads, c.Stats.ChainsGenerated)
	}
	fmt.Printf("\nmemory: demandReads=%d prefetchReads=%d emcReads=%d writes=%d rowConflict=%.1f%%\n",
		res.Sys.DRAMDemandReads, res.Sys.DRAMPrefetch, res.Sys.DRAMEMCReads,
		res.Sys.DRAMWrites, 100*res.RowConflictRate())
	fmt.Printf("latency: core-miss=%.1f cycles", res.CoreMissLatency())
	if res.Sys.EMCMissCount > 0 {
		fmt.Printf("  emc-miss=%.1f cycles (%.1f%% lower)",
			res.EMCMissLatency(), 100*(1-res.EMCMissLatency()/res.CoreMissLatency()))
	}
	fmt.Println()
	if *emc {
		var done, aborted, rejected uint64
		for _, e := range res.EMC {
			done += e.ChainsDone
			aborted += e.ChainsAborted
			rejected += e.ChainsRejected
		}
		fmt.Printf("emc: chainsDone=%d aborted=%d rejected=%d missFraction=%.1f%% cacheHit=%.1f%% avgChainLen=%.1f\n",
			done, aborted, rejected, 100*res.EMCMissFraction(),
			100*res.EMCCacheHitRate(), res.AvgChainLength())
	}
	if res.PrefetchIssued > 0 {
		fmt.Printf("prefetch: issued=%d useful=%d accuracy=%.1f%%\n",
			res.PrefetchIssued, res.PrefetchUseful,
			100*float64(res.PrefetchUseful)/float64(res.PrefetchIssued))
	}
	e := res.Energy
	fmt.Printf("energy: total=%.3g J (chip %.3g, dram %.3g)\n", e.Total(), e.Chip(), e.DRAMStatic+e.DRAMDynamic)
	if res.Obs != nil {
		fmt.Printf("\n%s", res.Obs.Table())
	}
	if *hist {
		fmt.Printf("\ncore-miss latency: %s\n  density: [%s]\n",
			res.Sys.CoreMissHist.String(), res.Sys.CoreMissHist.Bar(48))
		if res.Sys.EMCMissHist.Count() > 0 {
			fmt.Printf("emc-miss latency:  %s\n  density: [%s]\n",
				res.Sys.EMCMissHist.String(), res.Sys.EMCMissHist.Bar(48))
		}
	}
	linger()
	if cancelled {
		stopProfiling()
		os.Exit(1)
	}
}
