// Command tracecheck validates a Chrome trace_event JSON file of the shape
// emcsim and experiments emit (-trace): the "JSON Object Format" with a
// traceEvents array of metadata (M) and async nestable (b/n/e) events. It is
// the schema gate behind make trace-smoke.
//
//	tracecheck trace.json
//	tracecheck -metrics-url http://127.0.0.1:8080/metrics trace.json
//	tracecheck -counters counters.json trace.json
//	tracecheck -flight dump.emfr [more.emfr ...]
//
// -flight switches to flight-recorder mode: each argument is a CRC-framed
// .emfr dump (internal/obs/span), decoded and semantically verified — the
// exact-sum phase invariant, monotonic event timeline, known kinds/phases.
//
// Exit status is non-zero on any schema violation (missing fields, unknown
// phases, unbalanced b/e pairs, negative timestamps, spans that end before
// they begin, non-monotonic timestamps within a record).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/obs/span"
)

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	ID   string          `json:"id"`
	Args json.RawMessage `json:"args"`
}

func main() {
	metricsURL := flag.String("metrics-url", "", "also fetch this /metrics endpoint and require emcsim_ gauges")
	countersPath := flag.String("counters", "", "also validate this interval counter log (emcsim -counters output)")
	flight := flag.Bool("flight", false, "arguments are flight-recorder dumps (.emfr), not a Chrome trace")
	flag.Parse()
	if *flight {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: tracecheck -flight dump.emfr [more.emfr ...]")
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			if err := checkFlight(path); err != nil {
				fmt.Fprintln(os.Stderr, "tracecheck:", err)
				os.Exit(1)
			}
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-metrics-url URL] [-counters FILE] trace.json")
		os.Exit(2)
	}
	if err := checkTrace(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	if *metricsURL != "" {
		if err := checkMetrics(*metricsURL); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
	}
	if *countersPath != "" {
		if err := checkCounters(*countersPath); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
	}
}

func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: no traceEvents", path)
	}
	// Track open async spans per (pid, cat, id) — Chrome's nestable-event
	// matching key — and per-span timestamp monotonicity.
	type spanKey struct {
		pid int
		cat string
		id  string
	}
	type openSpan struct {
		begin float64 // begin timestamp, for the end<begin duration check
		last  float64 // latest timestamp seen, for per-span monotonicity
	}
	open := map[spanKey]openSpan{}
	var spans, steps int
	for i, ev := range tf.TraceEvents {
		at := func(msg string, args ...any) error {
			return fmt.Errorf("%s: event %d (%s %q): %s", path, i, ev.Ph, ev.Name, fmt.Sprintf(msg, args...))
		}
		if ev.Pid == nil {
			return at("missing pid")
		}
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				return at("unknown metadata name")
			}
			if len(ev.Args) == 0 {
				return at("metadata without args")
			}
		case "b", "n", "e":
			if ev.Ts == nil || ev.Tid == nil || ev.ID == "" {
				return at("async event missing ts/tid/id")
			}
			if *ev.Ts < 0 {
				return at("negative timestamp %v", *ev.Ts)
			}
			k := spanKey{*ev.Pid, ev.Cat, ev.ID}
			switch ev.Ph {
			case "b":
				if _, ok := open[k]; ok {
					return at("duplicate begin for id %s", ev.ID)
				}
				if ev.Name == "" {
					return at("begin without name")
				}
				open[k] = openSpan{begin: *ev.Ts, last: *ev.Ts}
				spans++
			case "n", "e":
				sp, ok := open[k]
				if !ok {
					return at("%s without begin for id %s", ev.Ph, ev.ID)
				}
				if ev.Ph == "e" && *ev.Ts < sp.begin {
					return at("span has negative duration: ends at %v, began at %v", *ev.Ts, sp.begin)
				}
				if *ev.Ts < sp.last {
					return at("timestamp moved backwards (%v < %v)", *ev.Ts, sp.last)
				}
				sp.last = *ev.Ts
				open[k] = sp
				if ev.Ph == "e" {
					delete(open, k)
				} else {
					steps++
				}
			}
		default:
			return at("unknown phase")
		}
	}
	if len(open) > 0 {
		return fmt.Errorf("%s: %d async spans never ended", path, len(open))
	}
	if spans == 0 {
		return fmt.Errorf("%s: no request spans", path)
	}
	fmt.Printf("%s: ok (%d events, %d request spans, %d stage steps)\n",
		path, len(tf.TraceEvents), spans, steps)
	return nil
}

// checkFlight decodes one flight-recorder dump (CRC-framed .emfr) and runs
// the semantic verification: exact-sum phases, monotonic event timeline.
func checkFlight(path string) error {
	d, err := span.ReadDumpFile(path)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: ok (job %s, reason %s, %d events, %d phases over %dns)\n",
		path, d.JobID, d.Reason, len(d.Events), len(d.PhasesNS), d.WallNS)
	return nil
}

func checkMetrics(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	var gauges int
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "emcsim_") {
			gauges++
		}
	}
	if gauges == 0 {
		return fmt.Errorf("%s: no emcsim_ metrics in response", url)
	}
	fmt.Printf("%s: ok (%d emcsim_ metric lines)\n", url, gauges)
	return nil
}

func checkCounters(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var log struct {
		Interval uint64   `json:"intervalCycles"`
		Names    []string `json:"names"`
		Samples  []struct {
			Cycle  uint64    `json:"cycle"`
			Values []float64 `json:"values"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if log.Interval == 0 || len(log.Names) == 0 || len(log.Samples) == 0 {
		return fmt.Errorf("%s: empty counter log", path)
	}
	for i, s := range log.Samples {
		if len(s.Values) != len(log.Names) {
			return fmt.Errorf("%s: sample %d has %d values for %d names", path, i, len(s.Values), len(log.Names))
		}
		if i > 0 && s.Cycle <= log.Samples[i-1].Cycle {
			return fmt.Errorf("%s: sample cycles not increasing at %d", path, i)
		}
	}
	fmt.Printf("%s: ok (%d counters x %d samples every %d cycles)\n",
		path, len(log.Names), len(log.Samples), log.Interval)
	return nil
}
