package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/span"
)

// writeTrace writes a trace file whose traceEvents array is the given JSON
// event objects.
func writeTrace(t *testing.T, events ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	body := fmt.Sprintf(`{"displayTimeUnit":"ms","traceEvents":[%s]}`, strings.Join(events, ","))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const meta = `{"name":"process_name","ph":"M","pid":1,"args":{"name":"t"}}`

// TestCheckTraceRejectsNegativeDuration: a span that ends before it begins
// must fail with a distinct error (the fix this test pins — before it, only
// intermediate "n" steps enforced ordering).
func TestCheckTraceRejectsNegativeDuration(t *testing.T) {
	path := writeTrace(t, meta,
		`{"name":"job","cat":"svc","ph":"b","ts":500,"pid":1,"tid":0,"id":"0x1"}`,
		`{"cat":"svc","ph":"e","ts":400,"pid":1,"tid":0,"id":"0x1"}`,
	)
	err := checkTrace(path)
	if err == nil || !strings.Contains(err.Error(), "negative duration") {
		t.Fatalf("checkTrace = %v, want negative-duration error", err)
	}
}

// TestCheckTraceRejectsNegativeTimestamp: raw negative timestamps are
// invalid in our exports (all times are offsets from a run base).
func TestCheckTraceRejectsNegativeTimestamp(t *testing.T) {
	path := writeTrace(t, meta,
		`{"name":"job","cat":"svc","ph":"b","ts":-3,"pid":1,"tid":0,"id":"0x1"}`,
		`{"cat":"svc","ph":"e","ts":10,"pid":1,"tid":0,"id":"0x1"}`,
	)
	err := checkTrace(path)
	if err == nil || !strings.Contains(err.Error(), "negative timestamp") {
		t.Fatalf("checkTrace = %v, want negative-timestamp error", err)
	}
}

// TestCheckTraceRejectsBackwardsStep: an "n" step older than the span's
// latest timestamp still fails with the monotonicity error.
func TestCheckTraceRejectsBackwardsStep(t *testing.T) {
	path := writeTrace(t, meta,
		`{"name":"job","cat":"svc","ph":"b","ts":100,"pid":1,"tid":0,"id":"0x1"}`,
		`{"name":"s1","cat":"svc","ph":"n","ts":300,"pid":1,"tid":0,"id":"0x1"}`,
		`{"name":"s2","cat":"svc","ph":"n","ts":200,"pid":1,"tid":0,"id":"0x1"}`,
		`{"cat":"svc","ph":"e","ts":400,"pid":1,"tid":0,"id":"0x1"}`,
	)
	err := checkTrace(path)
	if err == nil || !strings.Contains(err.Error(), "moved backwards") {
		t.Fatalf("checkTrace = %v, want moved-backwards error", err)
	}
}

// TestCheckTraceAcceptsValid: a balanced span with in-order steps passes.
func TestCheckTraceAcceptsValid(t *testing.T) {
	path := writeTrace(t, meta,
		`{"name":"job","cat":"svc","ph":"b","ts":100,"pid":1,"tid":0,"id":"0x1"}`,
		`{"name":"s1","cat":"svc","ph":"n","ts":200,"pid":1,"tid":0,"id":"0x1"}`,
		`{"cat":"svc","ph":"e","ts":400,"pid":1,"tid":0,"id":"0x1"}`,
	)
	if err := checkTrace(path); err != nil {
		t.Fatalf("checkTrace: %v", err)
	}
}

// TestCheckFlight: -flight mode accepts a valid dump, rejects a corrupted
// frame, and rejects a dump whose phases break the exact-sum invariant.
func TestCheckFlight(t *testing.T) {
	dir := t.TempDir()
	good := &span.Dump{
		JobID: "j1", Reason: "panic", State: "running", Attempts: 1,
		SubmitAtNS: 0, AdmitAtNS: 10, DumpAtNS: 100, WallNS: 100,
		PhasesNS: map[string]int64{"queued": 10, "running": 90},
		Events:   []span.DumpEvent{{AtNS: 0, Kind: "submit"}, {AtNS: 10, Kind: "admit"}},
	}
	goodPath := filepath.Join(dir, "good.emfr")
	if err := span.WriteDumpFile(goodPath, good); err != nil {
		t.Fatal(err)
	}
	if err := checkFlight(goodPath); err != nil {
		t.Fatalf("checkFlight(good): %v", err)
	}

	frame, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)/2] ^= 0x55
	badCRC := filepath.Join(dir, "badcrc.emfr")
	if err := os.WriteFile(badCRC, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkFlight(badCRC); err == nil {
		t.Fatal("checkFlight accepted a corrupted frame")
	}

	bad := *good
	bad.PhasesNS = map[string]int64{"queued": 10, "running": 80} // sums to 90, not 100
	badSum := filepath.Join(dir, "badsum.emfr")
	if err := span.WriteDumpFile(badSum, &bad); err != nil {
		t.Fatal(err)
	}
	err = checkFlight(badSum)
	if err == nil || !strings.Contains(err.Error(), "exact-sum") {
		t.Fatalf("checkFlight(badsum) = %v, want exact-sum error", err)
	}
}
