package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// TestRenderTopNodeTable: cluster-mode frames grow a NODE table with one
// row per fabric member, heartbeat age included.
func TestRenderTopNodeTable(t *testing.T) {
	f := &service.StatsFrame{
		Time: time.Now(),
		Stats: service.Stats{
			Nodes: []service.NodeStat{
				{Node: "node0", State: "self", Queued: 1, Forwarded: 3, StolenIn: 2, StolenOut: 1},
				{Node: "node1", State: "alive", HeartbeatAgeMS: 12},
				{Node: "node2", State: "dead", HeartbeatAgeMS: -1},
			},
		},
	}
	out := renderTop(f, newEtaTracker())
	for _, want := range []string{"NODE", "node0", "self", "12ms", "never", "dead", "2/1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered frame missing %q:\n%s", want, out)
		}
	}
	// Single-process frames stay free of the table.
	plain := renderTop(&service.StatsFrame{Time: time.Now()}, newEtaTracker())
	if strings.Contains(plain, "NODE") {
		t.Fatalf("non-cluster frame grew a NODE table:\n%s", plain)
	}
}

// TestTopReconnectsDroppedStream: a stream that dies mid-session is redialed
// with the remaining frame budget until the requested frames arrive.
func TestTopReconnectsDroppedStream(t *testing.T) {
	var dials atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/stats/stream" {
			http.NotFound(w, r)
			return
		}
		dials.Add(1)
		// Serve exactly one frame regardless of the requested budget, then
		// drop the connection — the client must reconnect for the rest.
		frame, _ := json.Marshal(service.StatsFrame{Time: time.Now()})
		w.Write(frame)
		fmt.Fprintln(w)
		w.(http.Flusher).Flush()
	}))
	defer srv.Close()

	c := &client{base: srv.URL, http: srv.Client(), retries: 4, retryBase: time.Millisecond}
	// Silence the dashboard output.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.top([]string{"-frames", "3", "-interval", "10ms", "-plain"})
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("top never finished its frame budget")
	}
	os.Stdout = old
	devnull.Close()

	if got := dials.Load(); got != 3 {
		t.Fatalf("stream dialed %d times, want 3 (one per surviving frame)", got)
	}
}
