package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/service"
)

// top is the live sweep dashboard: it consumes the server's NDJSON stats
// stream (/api/v1/stats/stream) and redraws a terminal view per frame —
// per-shard queue depth, running jobs with phase and ETA, cache hit and
// coalesce rates, per-node fabric rows in cluster mode, and the watchdog
// verdict. A dropped stream (server restart, network blip) reconnects with
// the client's jittered backoff, resuming with the remaining frame budget;
// only c.retries consecutive failures give up. -plain appends frames
// instead of clearing the screen (logs, CI); -frames bounds the session
// (smoke tests).
func (c *client) top(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "refresh period")
	frames := fs.Int("frames", 0, "stop after N frames (0 = until interrupted)")
	plain := fs.Bool("plain", false, "append frames instead of clearing the screen")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	remaining := *frames
	attempt := 0 // consecutive failures; any successful frame resets it
	for {
		path := fmt.Sprintf("/api/v1/stats/stream?poll=%d", interval.Milliseconds())
		if *frames > 0 {
			path += fmt.Sprintf("&frames=%d", remaining)
		}
		// Like watch: the stream must not carry the client-wide deadline.
		resp, err := (&http.Client{}).Get(c.base + path)
		if err != nil {
			if attempt >= c.retries {
				fmt.Fprintf(os.Stderr, "emcctl: server unreachable after %d attempts: %v\n", attempt+1, err)
				os.Exit(3)
			}
			c.backoff(attempt)
			attempt++
			continue
		}
		if resp.StatusCode != http.StatusOK {
			fatalStatus(resp)
		}
		et := newEtaTracker()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if len(strings.TrimSpace(sc.Text())) == 0 {
				continue
			}
			var f service.StatsFrame
			if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
				fmt.Fprintln(os.Stderr, "emcctl: bad stats frame:", err)
				continue
			}
			attempt = 0 // healthy stream: reset the failure budget
			if *frames > 0 {
				remaining--
			}
			if !*plain {
				fmt.Print("\x1b[H\x1b[2J") // home + clear
			}
			fmt.Print(renderTop(&f, et))
		}
		resp.Body.Close()
		if *frames > 0 && remaining <= 0 {
			return // frame budget spent: a normal end of session
		}
		// The stream dropped mid-session: reconnect with backoff, same
		// policy as the initial dial.
		if attempt >= c.retries {
			fmt.Fprintf(os.Stderr, "emcctl: stats stream dropped and %d reconnects failed\n", attempt)
			os.Exit(3)
		}
		c.backoff(attempt)
		attempt++
	}
}

// etaTracker estimates per-job completion from the retired-instruction rate
// between consecutive frames.
type etaTracker struct {
	prev map[string]etaSample
}

type etaSample struct {
	at      time.Time
	retired uint64
}

func newEtaTracker() *etaTracker { return &etaTracker{prev: map[string]etaSample{}} }

// eta returns a human ETA string for st, or "-" when no rate is known yet.
func (e *etaTracker) eta(at time.Time, st *service.Status) string {
	defer func() { e.prev[st.ID] = etaSample{at: at, retired: st.Retired} }()
	p, ok := e.prev[st.ID]
	if !ok || st.TargetInstrs == 0 || st.Retired >= st.TargetInstrs {
		return "-"
	}
	dt := at.Sub(p.at).Seconds()
	if dt <= 0 || st.Retired <= p.retired {
		return "-"
	}
	rate := float64(st.Retired-p.retired) / dt
	left := time.Duration(float64(st.TargetInstrs-st.Retired) / rate * float64(time.Second))
	return "~" + left.Round(time.Second).String()
}

// renderTop formats one dashboard frame.
func renderTop(f *service.StatsFrame, et *etaTracker) string {
	st := &f.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "emcserve top  %s\n", f.Time.Format(time.RFC3339))
	fmt.Fprintf(&b, "workers %d  queued %d  running %d  hung %d\n",
		st.Workers, st.QueueDepth, st.Running, st.Hung)
	fmt.Fprintf(&b, "jobs: %d submitted  %d done  %d failed  %d cancelled  %d retries\n",
		st.Submitted, st.Done, st.Failed, st.Cancelled, st.Retries)
	fmt.Fprintf(&b, "cache: %s hit  (%d hits / %d misses, %d entries)  coalesced %s\n",
		ratio(st.CacheHits, st.CacheHits+st.CacheMisses),
		st.CacheHits, st.CacheMisses, st.CacheEntries,
		ratio(st.Coalesced, st.Submitted))
	if st.FlightDumps > 0 || st.FlightDumpErrs > 0 {
		fmt.Fprintf(&b, "flight recorder: %d dumps  %d errors\n", st.FlightDumps, st.FlightDumpErrs)
	}

	if len(st.Shards) > 0 {
		fmt.Fprintf(&b, "\n%-6s %7s %8s %5s\n", "SHARD", "QUEUED", "RUNNING", "HUNG")
		for _, sh := range st.Shards {
			fmt.Fprintf(&b, "%-6d %7d %8d %5d\n", sh.Shard, sh.Queued, sh.Running, sh.Hung)
		}
	}

	if len(st.Nodes) > 0 {
		fmt.Fprintf(&b, "\n%-10s %-8s %7s %8s %5s %6s %9s %6s %6s %8s\n",
			"NODE", "STATE", "QUEUED", "RUNNING", "HUNG", "FWD", "STOLEN", "REPL", "TORN", "BEAT")
		for i := range st.Nodes {
			nd := &st.Nodes[i]
			beat := "-" // the self row has no heartbeat to age
			if nd.State != "self" {
				if nd.HeartbeatAgeMS < 0 {
					beat = "never"
				} else {
					beat = fmt.Sprintf("%dms", nd.HeartbeatAgeMS)
				}
			}
			state := nd.State
			if nd.Syncing {
				// Anti-entropy backfill in flight; shown in place of
				// alive/self (dead and degraded dominate).
				if state == "alive" || state == "self" {
					state = "syncing"
				}
			}
			fmt.Fprintf(&b, "%-10s %-8s %7d %8d %5d %6d %9s %6d %6d %8s\n",
				nd.Node, state, nd.Queued, nd.Running, nd.Hung, nd.Forwarded,
				fmt.Sprintf("%d/%d", nd.StolenIn, nd.StolenOut), nd.Replicated, nd.ReplTorn, beat)
		}
	}

	if len(f.Active) > 0 {
		fmt.Fprintf(&b, "\n%-8s %-10s %5s %-14s %14s %7s %8s\n",
			"JOB", "CLIENT", "SHARD", "PHASE", "PROGRESS", "IPC", "ETA")
		active := append([]service.Status(nil), f.Active...)
		sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })
		for i := range active {
			a := &active[i]
			fmt.Fprintf(&b, "%-8s %-10s %5d %-14s %14s %7.2f %8s\n",
				a.ID, a.Client, a.Shard, phaseOf(a),
				fmt.Sprintf("%d/%d", a.Retired, a.TargetInstrs), a.IPC, et.eta(f.Time, a))
		}
	}
	return b.String()
}

// phaseOf names the job's current phase for display, folding the watchdog
// verdict in ("running (hung)" is the state to stare at).
func phaseOf(st *service.Status) string {
	if st.State == service.StateRunning && st.Hung {
		return "running (hung)"
	}
	return string(st.State)
}

// ratio renders a/b as a percentage ("-" when b is 0).
func ratio(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}
