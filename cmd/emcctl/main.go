// Command emcctl is the thin client for emcserve.
//
//	emcctl [-server URL] submit -bench mcf,mcf,mcf,mcf -emc [-wait]
//	emcctl [-server URL] status  <job-id>
//	emcctl [-server URL] result  <job-id>
//	emcctl [-server URL] watch   <job-id>     # NDJSON progress stream
//	emcctl [-server URL] cancel  <job-id>
//	emcctl [-server URL] jobs
//	emcctl [-server URL] stats
//	emcctl [-server URL] top [-interval 1s] [-frames N] [-plain]
//	emcctl [-server URL] trace > trace.json   # Chrome trace of finished jobs
//	emcctl [-server URL] metrics              # raw Prometheus text
//
// Requests carry a deadline (-timeout) and retry transient failures —
// connection errors and 429/502/503/504 — with jittered exponential backoff
// (-retries, -retry-base). Retrying a submit is safe: jobs are
// content-addressed, so a resubmission of the same configuration coalesces
// with or cache-hits the first instead of running twice. Other 4xx statuses
// are permanent and never retried.
//
// Exit codes: 0 success, 1 permanent server error (or failed job with
// -wait), 2 usage, 3 server unreachable after all retries.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/service"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: emcctl [flags] <submit|status|result|watch|cancel|jobs|stats|top|trace|metrics> [args]")
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emcctl:", err)
	os.Exit(1)
}

// client wraps HTTP access with deadlines and transient-failure retries.
type client struct {
	base      string
	http      *http.Client
	retries   int
	retryBase time.Duration
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "emcserve base URL")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (watch: connect deadline)")
	retries := flag.Int("retries", 4, "retries for connection errors and retryable statuses (429/502/503/504)")
	retryBase := flag.Duration("retry-base", 200*time.Millisecond, "initial backoff; doubles per retry with jitter")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := &client{
		base:      strings.TrimRight(*server, "/"),
		http:      &http.Client{Timeout: *timeout},
		retries:   *retries,
		retryBase: *retryBase,
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	switch cmd {
	case "submit":
		c.submit(args)
	case "status":
		c.getJSON("/api/v1/jobs/" + one(args, cmd))
	case "result":
		c.getJSON("/api/v1/jobs/" + one(args, cmd) + "/result")
	case "watch":
		c.watch(one(args, cmd))
	case "cancel":
		c.post("/api/v1/jobs/"+one(args, cmd)+"/cancel", nil)
	case "jobs":
		c.getJSON("/api/v1/jobs")
	case "stats":
		c.getJSON("/api/v1/stats")
	case "top":
		c.top(args)
	case "trace":
		c.raw("/api/v1/trace")
	case "metrics":
		c.raw("/metrics")
	default:
		usage()
	}
}

func one(args []string, cmd string) string {
	if len(args) != 1 {
		fmt.Fprintf(os.Stderr, "emcctl: %s takes exactly one job id\n", cmd)
		os.Exit(2)
	}
	return args[0]
}

// retryableStatus reports whether a response status is worth retrying:
// backpressure and gateway hiccups are; every other 4xx is a permanent
// verdict about the request itself.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do performs one request with retries. It returns the response body and
// status code; permanent HTTP errors and exhausted retries exit directly
// (code 1 for server verdicts, 3 when the server was never reachable).
func (c *client) do(method, path string, body []byte) ([]byte, int) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			// Transport-level failure: connection refused, DNS, timeout.
			// The server may just not be up yet — retryable, but with its
			// own exit code so scripts can tell "down" from "said no".
			lastErr = err
			if attempt >= c.retries {
				fmt.Fprintf(os.Stderr, "emcctl: server unreachable after %d attempts: %v\n", attempt+1, lastErr)
				os.Exit(3)
			}
			c.backoff(attempt)
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			if attempt >= c.retries {
				fmt.Fprintf(os.Stderr, "emcctl: server unreachable after %d attempts: %v\n", attempt+1, lastErr)
				os.Exit(3)
			}
			c.backoff(attempt)
			continue
		}
		if retryableStatus(resp.StatusCode) && attempt < c.retries {
			c.backoff(attempt)
			continue
		}
		if resp.StatusCode >= 400 {
			fmt.Fprintf(os.Stderr, "emcctl: %s: %s\n", resp.Status, strings.TrimSpace(string(data)))
			os.Exit(1)
		}
		return data, resp.StatusCode
	}
}

// backoff sleeps for retryBase*2^attempt, scaled by a jitter in [0.5, 1.5)
// so a herd of retrying clients decorrelates.
func (c *client) backoff(attempt int) {
	d := c.retryBase << uint(attempt)
	time.Sleep(time.Duration(float64(d) * (0.5 + rand.Float64())))
}

func (c *client) get(path string) []byte {
	data, _ := c.do(http.MethodGet, path, nil)
	return data
}

func (c *client) getJSON(path string) {
	pretty(c.get(path))
}

func (c *client) post(path string, body []byte) []byte {
	data, _ := c.do(http.MethodPost, path, body)
	pretty(data)
	return data
}

func (c *client) submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	bench := fs.String("bench", "mcf,sphinx3,soplex,libquantum", "comma-separated benchmarks, one per core")
	n := fs.Uint64("n", 30000, "instructions per core")
	seed := fs.Uint64("seed", 1, "trace seed")
	pf := fs.String("pf", "none", "prefetcher: none|ghb|stream|markov+stream")
	emc := fs.Bool("emc", false, "enable the Enhanced Memory Controller")
	runahead := fs.Bool("runahead", false, "enable the runahead baseline")
	bp := fs.Bool("bp", false, "enable the branch predictor")
	mcs := fs.Int("mcs", 0, "memory controllers (8-core only)")
	ideal := fs.Bool("ideal-dep-hits", false, "serve dependent misses at LLC-hit latency")
	client := fs.String("client", "emcctl", "client name for queue fairness")
	wait := fs.Bool("wait", false, "poll until the job is terminal, then print its status")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	req := service.JobRequest{
		Client:             *client,
		Benchmarks:         strings.Split(*bench, ","),
		InstrPerCore:       *n,
		Seed:               *seed,
		Prefetcher:         *pf,
		EMC:                *emc,
		Runahead:           *runahead,
		UseBranchPredictor: *bp,
		MCs:                *mcs,
		IdealDependentHits: *ideal,
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	// Submission is idempotent (content-addressed), so do's retry loop may
	// safely resubmit: a duplicate coalesces with the in-flight job or hits
	// the result cache.
	data := c.post("/api/v1/jobs", body)
	if !*wait {
		return
	}
	var st service.Status
	if err := json.Unmarshal(data, &st); err != nil {
		fatal(err)
	}
	for !st.State.Terminal() {
		time.Sleep(200 * time.Millisecond)
		data = c.get("/api/v1/jobs/" + st.ID)
		if err := json.Unmarshal(data, &st); err != nil {
			fatal(err)
		}
	}
	pretty(data)
	if st.State != service.StateDone {
		os.Exit(1)
	}
}

// watch streams NDJSON progress. The connect itself goes through the retry
// policy; once streaming, EOF ends the watch (no mid-stream resume).
func (c *client) watch(id string) {
	path := "/api/v1/jobs/" + id + "/progress?poll=200"
	for attempt := 0; ; attempt++ {
		// Streams must not carry the client-wide deadline: a long job would
		// be cut off mid-watch. Connection errors still retry.
		resp, err := (&http.Client{}).Get(c.base + path)
		if err != nil {
			if attempt >= c.retries {
				fmt.Fprintf(os.Stderr, "emcctl: server unreachable after %d attempts: %v\n", attempt+1, err)
				os.Exit(3)
			}
			c.backoff(attempt)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatalStatus(resp)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			fmt.Println(sc.Text())
		}
		return
	}
}

func (c *client) raw(path string) {
	data, _ := c.do(http.MethodGet, path, nil)
	os.Stdout.Write(data) //nolint:errcheck // best-effort dump
}

func fatalStatus(resp *http.Response) {
	data, _ := io.ReadAll(resp.Body)
	fmt.Fprintf(os.Stderr, "emcctl: %s: %s\n", resp.Status, strings.TrimSpace(string(data)))
	os.Exit(1)
}

// pretty prints data re-indented when it is JSON, verbatim otherwise.
func pretty(data []byte) {
	var buf bytes.Buffer
	if json.Indent(&buf, bytes.TrimSpace(data), "", "  ") == nil {
		fmt.Println(buf.String())
		return
	}
	os.Stdout.Write(data) //nolint:errcheck
}
