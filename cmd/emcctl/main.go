// Command emcctl is the thin client for emcserve.
//
//	emcctl [-server URL] submit -bench mcf,mcf,mcf,mcf -emc [-wait]
//	emcctl [-server URL] status  <job-id>
//	emcctl [-server URL] result  <job-id>
//	emcctl [-server URL] watch   <job-id>     # NDJSON progress stream
//	emcctl [-server URL] cancel  <job-id>
//	emcctl [-server URL] jobs
//	emcctl [-server URL] stats
//	emcctl [-server URL] metrics              # raw Prometheus text
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/service"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: emcctl [-server URL] <submit|status|result|watch|cancel|jobs|stats|metrics> [args]")
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emcctl:", err)
	os.Exit(1)
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "emcserve base URL")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	base := strings.TrimRight(*server, "/")
	cmd, args := flag.Arg(0), flag.Args()[1:]

	switch cmd {
	case "submit":
		submit(base, args)
	case "status":
		getJSON(base, "/api/v1/jobs/"+one(args, cmd))
	case "result":
		getJSON(base, "/api/v1/jobs/"+one(args, cmd)+"/result")
	case "watch":
		watch(base, one(args, cmd))
	case "cancel":
		post(base, "/api/v1/jobs/"+one(args, cmd)+"/cancel", nil)
	case "jobs":
		getJSON(base, "/api/v1/jobs")
	case "stats":
		getJSON(base, "/api/v1/stats")
	case "metrics":
		raw(base, "/metrics")
	default:
		usage()
	}
}

func one(args []string, cmd string) string {
	if len(args) != 1 {
		fmt.Fprintf(os.Stderr, "emcctl: %s takes exactly one job id\n", cmd)
		os.Exit(2)
	}
	return args[0]
}

func submit(base string, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	bench := fs.String("bench", "mcf,sphinx3,soplex,libquantum", "comma-separated benchmarks, one per core")
	n := fs.Uint64("n", 30000, "instructions per core")
	seed := fs.Uint64("seed", 1, "trace seed")
	pf := fs.String("pf", "none", "prefetcher: none|ghb|stream|markov+stream")
	emc := fs.Bool("emc", false, "enable the Enhanced Memory Controller")
	runahead := fs.Bool("runahead", false, "enable the runahead baseline")
	bp := fs.Bool("bp", false, "enable the branch predictor")
	mcs := fs.Int("mcs", 0, "memory controllers (8-core only)")
	ideal := fs.Bool("ideal-dep-hits", false, "serve dependent misses at LLC-hit latency")
	client := fs.String("client", "emcctl", "client name for queue fairness")
	wait := fs.Bool("wait", false, "poll until the job is terminal, then print its status")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	req := service.JobRequest{
		Client:             *client,
		Benchmarks:         strings.Split(*bench, ","),
		InstrPerCore:       *n,
		Seed:               *seed,
		Prefetcher:         *pf,
		EMC:                *emc,
		Runahead:           *runahead,
		UseBranchPredictor: *bp,
		MCs:                *mcs,
		IdealDependentHits: *ideal,
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	data := post(base, "/api/v1/jobs", body)
	if !*wait {
		return
	}
	var st service.Status
	if err := json.Unmarshal(data, &st); err != nil {
		fatal(err)
	}
	for !st.State.Terminal() {
		time.Sleep(200 * time.Millisecond)
		data = get(base, "/api/v1/jobs/"+st.ID)
		if err := json.Unmarshal(data, &st); err != nil {
			fatal(err)
		}
	}
	pretty(data)
	if st.State != service.StateDone {
		os.Exit(1)
	}
}

func watch(base, id string) {
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/progress?poll=200")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalStatus(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
}

func get(base, path string) []byte {
	resp, err := http.Get(base + path)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode >= 400 {
		fmt.Fprintf(os.Stderr, "emcctl: %s: %s\n", resp.Status, strings.TrimSpace(string(data)))
		os.Exit(1)
	}
	return data
}

func getJSON(base, path string) {
	pretty(get(base, path))
}

func post(base, path string, body []byte) []byte {
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode >= 400 {
		fmt.Fprintf(os.Stderr, "emcctl: %s: %s\n", resp.Status, strings.TrimSpace(string(data)))
		os.Exit(1)
	}
	pretty(data)
	return data
}

func raw(base, path string) {
	resp, err := http.Get(base + path)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalStatus(resp)
	}
	io.Copy(os.Stdout, resp.Body) //nolint:errcheck // best-effort dump
}

func fatalStatus(resp *http.Response) {
	data, _ := io.ReadAll(resp.Body)
	fmt.Fprintf(os.Stderr, "emcctl: %s: %s\n", resp.Status, strings.TrimSpace(string(data)))
	os.Exit(1)
}

// pretty prints data re-indented when it is JSON, verbatim otherwise.
func pretty(data []byte) {
	var buf bytes.Buffer
	if json.Indent(&buf, bytes.TrimSpace(data), "", "  ") == nil {
		fmt.Println(buf.String())
		return
	}
	os.Stdout.Write(data) //nolint:errcheck
}
