// Benchmarks regenerating each table/figure of the paper's evaluation.
// One testing.B benchmark per figure drives the corresponding runner at a
// reduced instruction budget; `go test -bench . -benchmem` therefore walks
// the whole evaluation. Custom metrics report the figure's headline number
// so benchmark output doubles as a quick reproduction check.
//
// Ablation benchmarks at the bottom quantify the design choices called out
// in DESIGN.md (miss predictor, chain length, EMC cache, DRAM scheduler).
package emcsim

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/figures"
	"repro/internal/mem/dram"
	"repro/internal/sim"
)

// benchOpts keeps benchmark iterations affordable while preserving shape.
func benchOpts() figures.Options {
	o := figures.DefaultOptions()
	o.InstrPerCore = 6000
	o.InstrPerCore8 = 4000
	return o
}

// runFigure executes a figure runner b.N times (the suite memoizes runs, so
// iterations beyond the first measure the derivation, as in repeated use).
func runFigure(b *testing.B, f func(*figures.Suite) (*figures.Table, error)) *figures.Table {
	b.Helper()
	var tab *figures.Table
	for i := 0; i < b.N; i++ {
		s := figures.NewSuite(benchOpts())
		t, err := f(s)
		if err != nil {
			b.Fatal(err)
		}
		tab = t
	}
	return tab
}

func BenchmarkFig01LatencyBreakdown(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig1)
	// Headline: on-chip share of miss latency for the most intensive rows.
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(last.Values[3], "onchip%")
}

func BenchmarkFig02DependentMisses(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig2)
	var maxDep, maxSpeed float64
	for _, r := range tab.Rows {
		if r.Values[0] > maxDep {
			maxDep = r.Values[0]
			maxSpeed = r.Values[1]
		}
	}
	b.ReportMetric(maxDep, "maxDep%")
	b.ReportMetric(maxSpeed, "idealSpeedup")
}

func BenchmarkFig03PrefetchCoverage(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig3)
	mean := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(mean.Values[0], "ghbCov%")
}

func BenchmarkFig06ChainLength(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig6)
	var sum float64
	n := 0
	for _, r := range tab.Rows {
		if r.Values[0] > 0 {
			sum += r.Values[0]
			n++
		}
	}
	b.ReportMetric(sum/float64(n), "avgChainOps")
}

func BenchmarkFig12QuadCore(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig12)
	gmean := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(gmean.Values[0], "emcVsNone")
	b.ReportMetric(gmean.Values[1], "emcVsGHB")
}

func BenchmarkFig13Homogeneous(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig13)
	for _, r := range tab.Rows {
		if r.Label == "4xmcf" {
			b.ReportMetric(r.Values[0], "mcfSpeedup")
		}
	}
}

func BenchmarkFig14EightCore(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig14)
	gmean := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(gmean.Values[0], "1mcVsNone")
	b.ReportMetric(gmean.Values[2], "2mcVsNone")
}

func BenchmarkFig15EMCMissFraction(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig15)
	b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[0], "emcMiss%")
}

func BenchmarkFig16RowConflicts(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig16)
	var minDelta float64
	for _, r := range tab.Rows {
		if r.Values[2] < minDelta {
			minDelta = r.Values[2]
		}
	}
	b.ReportMetric(minDelta, "bestDeltaPp")
}

func BenchmarkFig17EMCCacheHits(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig17)
	var max float64
	for _, r := range tab.Rows {
		if r.Values[0] > max {
			max = r.Values[0]
		}
	}
	b.ReportMetric(max, "maxHit%")
}

func BenchmarkFig18MissLatency(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig18)
	b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[2], "saving%")
}

func BenchmarkFig19SavingsBreakdown(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig19)
	var q float64
	for _, r := range tab.Rows {
		q += r.Values[2]
	}
	b.ReportMetric(q/float64(len(tab.Rows)), "queueSaving")
}

func BenchmarkFig20Sensitivity(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig20)
	b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[0], "4c4rScaling")
}

func BenchmarkFig21EMCAndPrefetch(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig21)
	b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[0], "ghbCover%")
}

func BenchmarkFig22ChainUops(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig22)
	var sum float64
	n := 0
	for _, r := range tab.Rows {
		if r.Values[0] > 0 {
			sum += r.Values[0]
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "uopsPerChain")
	}
}

func BenchmarkSec65Overhead(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Overhead)
	mean := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(mean.Values[0], "dataRing%")
}

func BenchmarkFig23Energy(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig23)
	b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[0], "emcEnergyRel")
}

func BenchmarkFig24EnergyHomogeneous(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).Fig24)
	b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[0], "emcEnergyRel")
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// ablationRun measures avg IPC of 4xmcf with the EMC under a config tweak.
func ablationRun(b *testing.B, mut func(*sim.Config)) float64 {
	b.Helper()
	var ipc float64
	for i := 0; i < b.N; i++ {
		cfg := sim.Default([]string{"mcf", "mcf", "mcf", "mcf"})
		cfg.InstrPerCore = 6000
		cfg.EMCEnabled = true
		if mut != nil {
			mut(&cfg)
		}
		sys, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		ipc = r.AvgIPC()
	}
	return ipc
}

// BenchmarkAblationMissPredictor contrasts the miss predictor's DRAM-direct
// path against forcing every EMC load through the LLC.
func BenchmarkAblationMissPredictor(b *testing.B) {
	normal := ablationRun(b, nil)
	llcOnly := ablationRun(b, func(c *sim.Config) {
		c.EMCCfg.MissPredThreshold = 8 // unreachable: never predict miss
	})
	b.ReportMetric(normal/llcOnly, "vsLLCOnly")
}

// BenchmarkAblationChainLength contrasts the 16-uop chain cap with an 8-uop
// cap (shorter chains rarely reach the dependent miss).
func BenchmarkAblationChainLength(b *testing.B) {
	full := ablationRun(b, nil)
	short := ablationRun(b, func(c *sim.Config) {
		c.CoreTweak = func(cc *cpu.Config) { cc.ChainMaxUops = 8 }
	})
	b.ReportMetric(full/short, "vs8uop")
}

// BenchmarkAblationEMCCache contrasts the 4 KB EMC data cache with a
// minimal 256 B one.
func BenchmarkAblationEMCCache(b *testing.B) {
	full := ablationRun(b, nil)
	tiny := ablationRun(b, func(c *sim.Config) {
		c.EMCCfg.CacheSize = 256
	})
	b.ReportMetric(full/tiny, "vs256B")
}

// BenchmarkAblationScheduler contrasts batch scheduling with FR-FCFS and
// FCFS on the baseline system.
func BenchmarkAblationScheduler(b *testing.B) {
	var batch, frfcfs, fcfs float64
	for i := 0; i < b.N; i++ {
		run := func(pol dram.SchedPolicy) float64 {
			cfg := sim.Default([]string{"mcf", "mcf", "mcf", "mcf"})
			cfg.InstrPerCore = 6000
			cfg.Sched = pol
			sys, err := sim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			r, err := sys.Run()
			if err != nil {
				b.Fatal(err)
			}
			return r.AvgIPC()
		}
		batch = run(dram.SchedBatch)
		frfcfs = run(dram.SchedFRFCFS)
		fcfs = run(dram.SchedFCFS)
	}
	b.ReportMetric(batch/fcfs, "batchVsFCFS")
	b.ReportMetric(frfcfs/fcfs, "frfcfsVsFCFS")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles/sec is
// the practical limit on experiment scale).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.Default([]string{"mcf", "sphinx3", "soplex", "libquantum"})
		cfg.InstrPerCore = 8000
		sys, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/run")
}

// BenchmarkExtRunahead runs the extension comparison: runahead vs EMC vs
// their combination (the paper positions the mechanisms as complementary).
func BenchmarkExtRunahead(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).ExtRunahead)
	for _, r := range tab.Rows {
		if r.Label == "4xmcf" {
			b.ReportMetric(r.Values[1], "mcfEMC")
			b.ReportMetric(r.Values[2], "mcfBoth")
		}
	}
}

// BenchmarkWeightedSpeedup reports the multiprogrammed metric over H1-H10.
func BenchmarkWeightedSpeedup(b *testing.B) {
	tab := runFigure(b, (*figures.Suite).WeightedSpeedup)
	b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[2], "wsRatio")
}
