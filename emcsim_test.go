package emcsim

import "testing"

func TestWorkloadsMatchTable3(t *testing.T) {
	ws := Workloads()
	if len(ws) != 10 {
		t.Fatalf("want 10 workloads, got %d", len(ws))
	}
	// Spot-check against Table 3.
	if ws[0].Name != "H1" || ws[3].Benchmarks[0] != "mcf" {
		t.Errorf("workload table wrong: %+v", ws[:4])
	}
	for _, w := range ws {
		if len(w.Benchmarks) != 4 {
			t.Errorf("%s has %d benchmarks", w.Name, len(w.Benchmarks))
		}
		seen := map[string]bool{}
		for _, b := range w.Benchmarks {
			if seen[b] {
				t.Errorf("%s repeats %s (Table 3: each benchmark once per mix)", w.Name, b)
			}
			seen[b] = true
		}
	}
}

func TestHomogeneousWorkloads(t *testing.T) {
	hw := HomogeneousWorkloads()
	if len(hw) != 8 {
		t.Fatalf("want 8 homogeneous workloads, got %d", len(hw))
	}
	for _, w := range hw {
		for _, b := range w.Benchmarks[1:] {
			if b != w.Benchmarks[0] {
				t.Errorf("%s is not homogeneous", w.Name)
			}
		}
	}
}

func TestEightCoreWorkload(t *testing.T) {
	w := EightCoreWorkload(Workloads()[0])
	if len(w.Benchmarks) != 8 {
		t.Fatalf("doubled workload has %d benchmarks", len(w.Benchmarks))
	}
	for i := 0; i < 4; i++ {
		if w.Benchmarks[i] != w.Benchmarks[i+4] {
			t.Error("second half should mirror the first")
		}
	}
}

func TestRunPublicAPI(t *testing.T) {
	cfg := QuadCore(PFNone, true)
	res, err := Run(cfg, Workload{
		Name:         "smoke",
		Benchmarks:   []string{"mcf", "libquantum", "milc", "bwaves"},
		InstrPerCore: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgIPC() <= 0 {
		t.Error("IPC should be positive")
	}
	if len(res.Cores) != 4 {
		t.Errorf("want 4 cores, got %d", len(res.Cores))
	}
	if _, err := Run(cfg, Workload{Name: "empty"}); err == nil {
		t.Error("empty workload must fail")
	}
}

func TestBenchmarkLists(t *testing.T) {
	if len(Benchmarks()) != 29 {
		t.Errorf("want 29 benchmarks, got %d", len(Benchmarks()))
	}
	if len(HighIntensityBenchmarks()) != 8 {
		t.Errorf("want 8 high-intensity, got %d", len(HighIntensityBenchmarks()))
	}
}
