package emcsim_test

import (
	"fmt"

	emcsim "repro"
)

// ExampleRun simulates a small pointer-chasing workload on the paper's
// quad-core system with the Enhanced Memory Controller enabled and reports
// the functional invariant every run must satisfy.
func ExampleRun() {
	cfg := emcsim.QuadCore(emcsim.PFNone, true)
	res, err := emcsim.Run(cfg, emcsim.Workload{
		Name:         "demo",
		Benchmarks:   []string{"mcf", "mcf", "mcf", "mcf"},
		InstrPerCore: 4000,
		Seed:         3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var mismatches uint64
	for _, e := range res.EMC {
		mismatches += e.AddrMismatches
	}
	fmt.Printf("cores: %d\n", len(res.Cores))
	fmt.Printf("address mismatches: %d\n", mismatches)
	// Output:
	// cores: 4
	// address mismatches: 0
}

// ExampleWorkloads lists the paper's Table-3 workload mixes.
func ExampleWorkloads() {
	for _, w := range emcsim.Workloads()[:3] {
		fmt.Println(w.Name, w.Benchmarks)
	}
	// Output:
	// H1 [bwaves lbm milc omnetpp]
	// H2 [soplex omnetpp bwaves libquantum]
	// H3 [sphinx3 mcf omnetpp milc]
}
