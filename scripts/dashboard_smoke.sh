#!/bin/sh
# dashboard_smoke.sh — observability end-to-end smoke (make dashboard-smoke).
#
# Boots emcserve with the flight recorder armed and a oneshot prerun
# failpoint (the first attempt of the first job panics, its retry succeeds),
# runs a small sweep, then asserts the whole span pipeline end to end:
#   1. /api/v1/stats returns the per-shard breakdown,
#   2. emcctl top renders a live dashboard frame from the NDJSON stream,
#   3. the induced panic produced a flight-recorder dump that round-trips
#      tracecheck -flight (CRC + exact-sum phase verification),
#   4. /api/v1/trace exports a Chrome trace that passes tracecheck.
set -eu

GO="${GO:-go}"
dir=.smoke-dash
srvpid=""
rm -rf "$dir"
mkdir -p "$dir/flight"
trap 'rm -rf "$dir"; [ -n "$srvpid" ] && kill "$srvpid" 2>/dev/null || true' EXIT

"$GO" build -o "$dir/emcserve" ./cmd/emcserve
"$GO" build -o "$dir/emcctl" ./cmd/emcctl
"$GO" build -o "$dir/tracecheck" ./cmd/tracecheck

EMCSIM_FAILPOINTS='service/worker.prerun=oneshot' \
    "$dir/emcserve" -addr 127.0.0.1:0 -workers 2 \
    -flight-dir "$dir/flight" \
    >"$dir/serve.out" 2>"$dir/serve.err" &
srvpid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*listening on http://\([0-9.:]*\).*|\1|p' "$dir/serve.out" 2>/dev/null | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "dashboard-smoke: server address never appeared" >&2
    cat "$dir/serve.out" "$dir/serve.err" >&2 || true
    exit 1
fi
server="http://$addr"

# A small sweep: the first job's first attempt hits the oneshot panic (one
# flight dump) and retries to completion; the second runs clean.
"$dir/emcctl" -server "$server" submit \
    -bench mcf,sphinx3,soplex,libquantum -n 2000 -emc -wait >"$dir/job1.json"
grep -q '"state": "done"' "$dir/job1.json" || {
    echo "dashboard-smoke: job1 did not finish (retry after the failpoint panic should have)" >&2
    cat "$dir/job1.json" "$dir/serve.err" >&2 || true
    exit 1
}
"$dir/emcctl" -server "$server" submit \
    -bench mcf,sphinx3,soplex,libquantum -n 2000 -wait >"$dir/job2.json"
grep -q '"state": "done"' "$dir/job2.json" || {
    echo "dashboard-smoke: job2 did not finish" >&2
    cat "$dir/job2.json" >&2
    exit 1
}
echo "sweep: ok (2 jobs done, 1 induced panic absorbed)"

# 1. Stats carry the per-shard breakdown and the dump counter.
"$dir/emcctl" -server "$server" stats >"$dir/stats.json"
grep -q '"shards"' "$dir/stats.json" || {
    echo "dashboard-smoke: /api/v1/stats has no per-shard breakdown" >&2
    cat "$dir/stats.json" >&2
    exit 1
}
dumps=$(sed -n 's/.*"flightDumps": \([0-9]*\).*/\1/p' "$dir/stats.json" | head -n 1)
if [ "${dumps:-0}" -lt 1 ] 2>/dev/null; then
    echo "dashboard-smoke: no flight dump counted (got '$dumps')" >&2
    cat "$dir/stats.json" >&2
    exit 1
fi
echo "stats: ok ($dumps flight dump(s) counted)"

# 2. The live dashboard renders from the NDJSON stats stream.
"$dir/emcctl" -server "$server" top -frames 2 -interval 200ms -plain >"$dir/top.out"
grep -q "emcserve top" "$dir/top.out" || {
    echo "dashboard-smoke: emcctl top rendered no header" >&2
    cat "$dir/top.out" >&2
    exit 1
}
grep -q "SHARD" "$dir/top.out" || {
    echo "dashboard-smoke: emcctl top rendered no shard table" >&2
    cat "$dir/top.out" >&2
    exit 1
}
echo "emcctl top: ok"

# 3. The induced panic's flight dump round-trips tracecheck -flight.
set -- "$dir"/flight/*-panic-*.emfr
if [ ! -f "$1" ]; then
    echo "dashboard-smoke: no panic flight dump in $dir/flight" >&2
    ls -la "$dir/flight" >&2 || true
    exit 1
fi
"$dir/tracecheck" -flight "$@" || {
    echo "dashboard-smoke: flight dump failed verification" >&2
    exit 1
}
echo "flight recorder: ok"

# 4. The span trace export passes the Chrome schema gate.
"$dir/emcctl" -server "$server" trace >"$dir/trace.json"
"$dir/tracecheck" "$dir/trace.json" || {
    echo "dashboard-smoke: span trace export failed tracecheck" >&2
    exit 1
}
echo "trace export: ok"

kill -TERM "$srvpid"
for _ in $(seq 1 100); do
    kill -0 "$srvpid" 2>/dev/null || break
    sleep 0.1
done
wait "$srvpid" 2>/dev/null || true
echo "dashboard-smoke: ok"
