#!/bin/sh
# cluster_smoke.sh — 3-node sweep-fabric smoke over real processes
# (make cluster-smoke).
#
# Boots three emcserve nodes (a, b, c; b and c bootstrap membership with
# -join a), waits for the member tables to converge, then verifies the
# fabric contract end to end:
#   1. the same configuration submitted to two different nodes returns
#      byte-identical result JSON (consistent-hash routing + replication),
#   2. a sweep stays live through a SIGKILL of one node mid-flight: every
#      job submitted before the kill reaches done on the survivors,
#   3. post-kill resubmits of the same sweep to a *different* entry node
#      are served byte-identical (no lost, duplicated, or torn results).
set -eu

GO="${GO:-go}"
dir=.smoke-cluster
pid_a=""
pid_b=""
pid_c=""
rm -rf "$dir"
mkdir -p "$dir"
trap 'rm -rf "$dir"; for p in $pid_a $pid_b $pid_c; do kill -9 "$p" 2>/dev/null || true; done' EXIT

"$GO" build -o "$dir/emcserve" ./cmd/emcserve
"$GO" build -o "$dir/emcctl" ./cmd/emcctl

boot() {
    # $1: node id, $2: log file, $3: -join URL ("" for the first node).
    # Sets $bootpid and $bootserver.
    "$dir/emcserve" -addr 127.0.0.1:0 -workers 2 -node-id "$1" \
        -heartbeat 100ms -suspect-after 500ms -join "$3" \
        >"$2" 2>"$2.err" &
    bootpid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|.*listening on http://\([0-9.:]*\).*|\1|p' "$2" 2>/dev/null | head -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "cluster-smoke: node $1 address never appeared" >&2
        cat "$2" "$2.err" >&2 || true
        exit 1
    fi
    bootserver="http://$addr"
}

boot a "$dir/a.out" ""
pid_a=$bootpid; srv_a=$bootserver
boot b "$dir/b.out" "$srv_a"
pid_b=$bootpid; srv_b=$bootserver
boot c "$dir/c.out" "$srv_a"
pid_c=$bootpid; srv_c=$bootserver

# Membership convergence: every node's stats must list all three rows.
for srv in "$srv_a" "$srv_b" "$srv_c"; do
    ok=0
    for _ in $(seq 1 100); do
        n=$("$dir/emcctl" -server "$srv" stats 2>/dev/null | grep -c '"node"' || true)
        if [ "${n:-0}" -eq 3 ]; then ok=1; break; fi
        sleep 0.1
    done
    if [ "$ok" -ne 1 ]; then
        echo "cluster-smoke: membership never converged on $srv" >&2
        "$dir/emcctl" -server "$srv" stats >&2 || true
        exit 1
    fi
done
echo "3-node membership: ok"

result_of() {
    # $1: server, $2..: submit args. Waits and writes the result JSON to stdout.
    srv=$1; shift
    out=$("$dir/emcctl" -server "$srv" submit "$@" -wait) || true
    echo "$out" | grep -q '"state": "done"' || {
        echo "cluster-smoke: job on $srv did not finish" >&2
        echo "$out" >&2
        exit 1
    }
    id=$(echo "$out" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' | head -n 1)
    "$dir/emcctl" -server "$srv" result "$id"
}

# 1. Same configuration through two different entry nodes: the fabric must
#    route both to one owner and serve byte-identical bytes.
result_of "$srv_a" -bench mcf,sphinx3,soplex,libquantum -n 2000 -emc >"$dir/via_a.json"
result_of "$srv_b" -bench mcf,sphinx3,soplex,libquantum -n 2000 -emc >"$dir/via_b.json"
if ! cmp -s "$dir/via_a.json" "$dir/via_b.json"; then
    echo "cluster-smoke: same config served different bytes from a and b" >&2
    diff "$dir/via_a.json" "$dir/via_b.json" >&2 || true
    exit 1
fi
echo "cross-node byte-identical result: ok"

# 2. Fire a 4-seed sweep at node a without waiting, then SIGKILL node c
#    while it is in flight. Submission is content-addressed, so the waits
#    below coalesce onto the in-flight runs (or their cached results).
for seed in 11 12 13 14; do
    "$dir/emcctl" -server "$srv_a" submit \
        -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc >/dev/null
done
kill -9 "$pid_c"
wait "$pid_c" 2>/dev/null || true
pid_c=""
echo "SIGKILL node c mid-sweep: ok"

# 3. Every sweep job completes on the survivors, and resubmitting through
#    node b serves the same bytes node a does.
for seed in 11 12 13 14; do
    result_of "$srv_a" -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc \
        >"$dir/sweep_a_$seed.json"
    result_of "$srv_b" -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc \
        >"$dir/sweep_b_$seed.json"
    if ! cmp -s "$dir/sweep_a_$seed.json" "$dir/sweep_b_$seed.json"; then
        echo "cluster-smoke: seed $seed served different bytes from a and b after the kill" >&2
        diff "$dir/sweep_a_$seed.json" "$dir/sweep_b_$seed.json" >&2 || true
        exit 1
    fi
done
echo "sweep survived node death, byte-identical on survivors: ok"

for p in "$pid_a" "$pid_b"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "$pid_a" "$pid_b"; do
    wait "$p" 2>/dev/null || true
done
pid_a=""; pid_b=""
echo "cluster-smoke: ok"
