#!/bin/sh
# kill_smoke.sh — crash-recovery smoke for the durable result cache
# (make kill-smoke).
#
# Boots emcserve with -cache-dir, completes one job, then SIGKILLs the
# server while a second sweep job is in flight (the crash nobody drains
# from). Restarts the server over the same directory and verifies:
#   1. the completed result was reloaded from the durable cache,
#   2. resubmitting the same configuration is a cache hit (no re-run),
#   3. the served result JSON is byte-identical to the pre-crash one.
set -eu

GO="${GO:-go}"
dir=.smoke-kill
srvpid=""
rm -rf "$dir"
mkdir -p "$dir"
trap 'rm -rf "$dir"; [ -n "$srvpid" ] && kill -9 "$srvpid" 2>/dev/null || true' EXIT

"$GO" build -o "$dir/emcserve" ./cmd/emcserve
"$GO" build -o "$dir/emcctl" ./cmd/emcctl

boot() {
    # $1: output file for the server log. Sets $srvpid and $server.
    "$dir/emcserve" -addr 127.0.0.1:0 -workers 2 -cache-dir "$dir/cache" \
        >"$1" 2>"$1.err" &
    srvpid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|.*listening on http://\([0-9.:]*\).*|\1|p' "$1" 2>/dev/null | head -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "kill-smoke: server address never appeared" >&2
        cat "$1" "$1.err" >&2 || true
        exit 1
    fi
    server="http://$addr"
}

boot "$dir/serve1.out"

submit() {
    "$dir/emcctl" -server "$server" submit \
        -bench mcf,sphinx3,soplex,libquantum -n 2000 -emc -wait
}

# 1. Complete one job and capture its result before the crash.
submit >"$dir/first.json"
grep -q '"state": "done"' "$dir/first.json" || {
    echo "kill-smoke: first job did not finish" >&2
    cat "$dir/first.json" "$dir/serve1.out.err" >&2 || true
    exit 1
}
id=$(sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' "$dir/first.json" | head -n 1)
"$dir/emcctl" -server "$server" result "$id" >"$dir/before.json"
echo "pre-crash result: ok (job $id)"

# 2. Kick off a second sweep job and SIGKILL the server mid-flight: no
#    drain, no flush beyond what the write-through already persisted.
"$dir/emcctl" -server "$server" submit \
    -bench mcf,mcf,mcf,mcf -n 200000 -emc >/dev/null
kill -9 "$srvpid"
wait "$srvpid" 2>/dev/null || true
srvpid=""
echo "SIGKILL mid-sweep: ok"

# 3. Restart over the same cache directory.
boot "$dir/serve2.out"
loaded=$(sed -n 's/.*durable cache .*: \([0-9]*\) results loaded.*/\1/p' "$dir/serve2.out" | head -n 1)
if [ "${loaded:-0}" -lt 1 ] 2>/dev/null; then
    echo "kill-smoke: restart loaded no durable results (got '$loaded')" >&2
    cat "$dir/serve2.out" "$dir/serve2.out.err" >&2 || true
    exit 1
fi
echo "durable reload: ok ($loaded result(s))"

# 4. The resubmitted configuration is served from the cache, bit-identical.
submit >"$dir/second.json"
grep -q '"cached": true' "$dir/second.json" || {
    echo "kill-smoke: resubmit after crash was not served from the durable cache" >&2
    cat "$dir/second.json" >&2
    exit 1
}
id2=$(sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' "$dir/second.json" | head -n 1)
"$dir/emcctl" -server "$server" result "$id2" >"$dir/after.json"
if ! cmp -s "$dir/before.json" "$dir/after.json"; then
    echo "kill-smoke: post-crash result differs from pre-crash result" >&2
    diff "$dir/before.json" "$dir/after.json" >&2 || true
    exit 1
fi
echo "byte-identical recovery: ok"

kill -TERM "$srvpid" 2>/dev/null || true
wait "$srvpid" 2>/dev/null || true
srvpid=""
echo "kill-smoke: ok"
