#!/bin/sh
# heal_smoke.sh — self-healing fabric smoke over real processes
# (make heal-smoke).
#
# Boots a token-authenticated 3-node fabric where node c joins mid-sweep
# (join-time ring handover), SIGKILLs c mid-flight of a second sweep, then
# restarts it over its original durable cache directory and verifies the
# self-healing contract end to end:
#   1. every job from both sweeps completes on the survivors with
#      byte-identical results regardless of entry node,
#   2. the restarted node converges, via anti-entropy digest exchange and
#      backfill alone, to a durable record set byte-for-byte identical to
#      the survivor's (same filenames, same frame bytes),
#   3. results served by the recovered node match the survivor's bytes.
set -eu

GO="${GO:-go}"
dir=.smoke-heal
token=heal-smoke-token
pid_a=""
pid_b=""
pid_c=""
rm -rf "$dir"
mkdir -p "$dir"
trap 'rm -rf "$dir"; for p in $pid_a $pid_b $pid_c; do kill -9 "$p" 2>/dev/null || true; done' EXIT

"$GO" build -o "$dir/emcserve" ./cmd/emcserve
"$GO" build -o "$dir/emcctl" ./cmd/emcctl

boot() {
    # $1: node id, $2: log file, $3: -join URL ("" for the first node).
    # Sets $bootpid and $bootserver. Every node gets its own durable cache
    # directory, the shared cluster token, and a fast anti-entropy cadence.
    mkdir -p "$dir/cache-$1"
    "$dir/emcserve" -addr 127.0.0.1:0 -workers 2 -node-id "$1" \
        -cache-dir "$dir/cache-$1" -cluster-token "$token" \
        -heartbeat 100ms -suspect-after 500ms \
        -anti-entropy-interval 250ms -breaker-cooldown 500ms \
        -join "$3" \
        >"$2" 2>"$2.err" &
    bootpid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|.*listening on http://\([0-9.:]*\).*|\1|p' "$2" 2>/dev/null | head -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "heal-smoke: node $1 address never appeared" >&2
        cat "$2" "$2.err" >&2 || true
        exit 1
    fi
    bootserver="http://$addr"
}

wait_members() {
    # $1: server URL, $2: expected member-row count.
    ok=0
    for _ in $(seq 1 100); do
        n=$("$dir/emcctl" -server "$1" stats 2>/dev/null | grep -c '"node"' || true)
        if [ "${n:-0}" -eq "$2" ]; then ok=1; break; fi
        sleep 0.1
    done
    if [ "$ok" -ne 1 ]; then
        echo "heal-smoke: membership never reached $2 rows on $1" >&2
        "$dir/emcctl" -server "$1" stats >&2 || true
        exit 1
    fi
}

result_of() {
    # $1: server, $2..: submit args. Waits and writes the result JSON to stdout.
    srv=$1; shift
    out=$("$dir/emcctl" -server "$srv" submit "$@" -wait) || true
    echo "$out" | grep -q '"state": "done"' || {
        echo "heal-smoke: job on $srv did not finish" >&2
        echo "$out" >&2
        exit 1
    }
    id=$(echo "$out" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' | head -n 1)
    "$dir/emcctl" -server "$srv" result "$id"
}

boot a "$dir/a.out" ""
pid_a=$bootpid; srv_a=$bootserver
boot b "$dir/b.out" "$srv_a"
pid_b=$bootpid; srv_b=$bootserver
wait_members "$srv_a" 2
echo "2-node authenticated fabric: ok"

# Sweep 1 fired at node a without waiting; node c joins while it is in
# flight, so queued work whose keys c now owns hands over to the joiner.
for seed in 31 32 33; do
    "$dir/emcctl" -server "$srv_a" submit \
        -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc >/dev/null
done
boot c "$dir/c.out" "$srv_a"
pid_c=$bootpid; srv_c=$bootserver
for srv in "$srv_a" "$srv_b" "$srv_c"; do
    wait_members "$srv" 3
done
echo "node c joined mid-sweep: ok"

for seed in 31 32 33; do
    result_of "$srv_a" -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc \
        >"$dir/sweep1_a_$seed.json"
done
echo "sweep 1 completed through the join: ok"

# Sweep 2 in flight when c is SIGKILLed: the survivors must finish every
# job and serve identical bytes from either entry node.
for seed in 34 35 36; do
    "$dir/emcctl" -server "$srv_a" submit \
        -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc >/dev/null
done
kill -9 "$pid_c"
wait "$pid_c" 2>/dev/null || true
pid_c=""
echo "SIGKILL node c mid-sweep: ok"

for seed in 34 35 36; do
    result_of "$srv_a" -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc \
        >"$dir/sweep2_a_$seed.json"
    result_of "$srv_b" -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc \
        >"$dir/sweep2_b_$seed.json"
    if ! cmp -s "$dir/sweep2_a_$seed.json" "$dir/sweep2_b_$seed.json"; then
        echo "heal-smoke: seed $seed served different bytes from a and b after the kill" >&2
        exit 1
    fi
done
echo "sweep 2 survived node death, byte-identical on survivors: ok"

# Restart c over its original durable cache directory. Anti-entropy must
# converge it to node a's record set: every record file node a holds shows
# up under node c with identical bytes (filenames are a deterministic
# function of the key, frames are deterministic encodings of deterministic
# results, so byte-for-byte equality is the contract, not a coincidence).
boot c "$dir/c2.out" "$srv_a"
pid_c=$bootpid; srv_c=$bootserver
wait_members "$srv_c" 3

converged=0
for _ in $(seq 1 150); do
    converged=1
    for f in "$dir"/cache-a/*; do
        [ -f "$f" ] || continue
        if ! cmp -s "$f" "$dir/cache-c/$(basename "$f")" 2>/dev/null; then
            converged=0
            break
        fi
    done
    [ "$converged" -eq 1 ] && break
    sleep 0.2
done
if [ "$converged" -ne 1 ]; then
    echo "heal-smoke: durable cache never converged on the restarted node" >&2
    ls -l "$dir/cache-a" "$dir/cache-c" >&2 || true
    exit 1
fi
echo "restarted node converged byte-for-byte via anti-entropy: ok"

# The recovered node serves the same bytes the survivor does.
for seed in 31 34; do
    result_of "$srv_c" -bench mcf,mcf,mcf,mcf -n 50000 -seed "$seed" -emc \
        >"$dir/recovered_c_$seed.json"
    ref="$dir/sweep1_a_$seed.json"
    [ "$seed" -ge 34 ] && ref="$dir/sweep2_a_$seed.json"
    if ! cmp -s "$ref" "$dir/recovered_c_$seed.json"; then
        echo "heal-smoke: recovered node served different bytes for seed $seed" >&2
        exit 1
    fi
done
echo "recovered node serves byte-identical results: ok"

for p in "$pid_a" "$pid_b" "$pid_c"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "$pid_a" "$pid_b" "$pid_c"; do
    wait "$p" 2>/dev/null || true
done
pid_a=""; pid_b=""; pid_c=""
echo "heal-smoke: ok"
