#!/bin/sh
# Lint canary: prove the cross-package analyzers still fire.
#
# A static analyzer that silently stops reporting looks exactly like a clean
# tree, so "make lint is green" alone is not evidence the lint suite works.
# This script copies the module into a throwaway overlay, verifies the clean
# tree passes, injects three known violations into the cluster layer — a
# wall clock flowing into a sim.Result (dettaint), a reversed lock pair
# (lockorder), and a goroutine with no stop path (goroutineleak) — and
# asserts simlint exits nonzero with each analyzer reporting inside its
# canary file.
set -eu

GO="${GO:-go}"
root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT INT TERM

overlay="$work/tree"
mkdir -p "$overlay"
# Copy the module sources; VCS state and smoke artifacts are irrelevant to
# go list and only slow the copy down.
(cd "$root" && tar -cf - --exclude .git --exclude '.smoke*' --exclude '*.test' .) \
	| (cd "$overlay" && tar -xf -)

echo "lint-canary: precheck (clean tree must pass)"
if ! (cd "$overlay" && "$GO" run ./cmd/simlint ./... >/dev/null); then
	echo "lint-canary: FAIL: clean tree does not pass simlint" >&2
	exit 1
fi

cat > "$overlay/internal/cluster/zz_canary_dettaint.go" <<'EOF'
package cluster

import (
	"time"

	"repro/internal/sim"
)

// canaryTaint writes the wall clock into a Result field: dettaint must fire.
func canaryTaint(r *sim.Result) {
	r.Cycles = uint64(time.Now().UnixNano())
}
EOF

cat > "$overlay/internal/cluster/zz_canary_lockorder.go" <<'EOF'
package cluster

import "sync"

type canaryL1 struct{ mu sync.Mutex }
type canaryL2 struct{ mu sync.Mutex }

// canaryLockAB and canaryLockBA reverse each other's acquisition order:
// lockorder must report the cycle.
func canaryLockAB(a *canaryL1, b *canaryL2) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func canaryLockBA(a *canaryL1, b *canaryL2) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
EOF

cat > "$overlay/internal/cluster/zz_canary_goroutineleak.go" <<'EOF'
package cluster

import "time"

// canaryLeak spawns a goroutine whose loop never observes a stop signal:
// goroutineleak must fire.
func canaryLeak() {
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}
EOF

out="$work/findings.txt"
if (cd "$overlay" && "$GO" run ./cmd/simlint ./... >"$out" 2>&1); then
	echo "lint-canary: FAIL: simlint exited 0 with injected violations" >&2
	cat "$out" >&2
	exit 1
fi

fail=0
for a in dettaint lockorder goroutineleak; do
	if ! grep -q "zz_canary_${a}\.go.*(${a})" "$out"; then
		echo "lint-canary: FAIL: ${a} did not report inside zz_canary_${a}.go" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	cat "$out" >&2
	exit 1
fi
echo "lint-canary: PASS (dettaint, lockorder, goroutineleak all fire)"
