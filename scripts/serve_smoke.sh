#!/bin/sh
# serve_smoke.sh — end-to-end service smoke (make serve-smoke).
#
# Boots emcserve on an ephemeral port, then via emcctl:
#   1. submits a tiny job and waits for it (state=done, cached=false),
#   2. resubmits the identical job and checks it is a cache hit
#      (cached=true) confirmed by the emcsim_service_cache_hits metric,
#   3. shuts the server down with SIGTERM and checks the graceful drain.
set -eu

GO="${GO:-go}"
dir=.smoke-serve
srvpid=""
rm -rf "$dir"
mkdir -p "$dir"
trap 'rm -rf "$dir"; [ -n "$srvpid" ] && kill "$srvpid" 2>/dev/null || true' EXIT

"$GO" build -o "$dir/emcserve" ./cmd/emcserve
"$GO" build -o "$dir/emcctl" ./cmd/emcctl

"$dir/emcserve" -addr 127.0.0.1:0 -workers 2 \
    >"$dir/serve.out" 2>"$dir/serve.err" &
srvpid=$!

# The bound address is printed as "emcserve listening on http://ADDR".
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*listening on http://\([0-9.:]*\).*|\1|p' "$dir/serve.out" 2>/dev/null | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: server address never appeared" >&2
    cat "$dir/serve.out" "$dir/serve.err" >&2 || true
    exit 1
fi
server="http://$addr"

submit() {
    "$dir/emcctl" -server "$server" submit \
        -bench mcf,sphinx3,soplex,libquantum -n 2000 -emc -wait
}

# 1. First submission simulates.
submit >"$dir/first.json"
grep -q '"state": "done"' "$dir/first.json" || {
    echo "serve-smoke: first job did not finish" >&2
    cat "$dir/first.json" "$dir/serve.err" >&2 || true
    exit 1
}
grep -q '"cached": false' "$dir/first.json" || {
    echo "serve-smoke: first job should not be a cache hit" >&2
    cat "$dir/first.json" >&2
    exit 1
}
echo "first run: ok"

# 2. Identical resubmission is a cache hit.
submit >"$dir/second.json"
grep -q '"cached": true' "$dir/second.json" || {
    echo "serve-smoke: resubmit was not served from the cache" >&2
    cat "$dir/second.json" >&2
    exit 1
}
"$dir/emcctl" -server "$server" metrics >"$dir/metrics.txt"
hits=$(sed -n 's/^emcsim_service_cache_hits{[^}]*} //p' "$dir/metrics.txt" | head -n 1)
if [ "${hits:-0}" -lt 1 ] 2>/dev/null; then
    echo "serve-smoke: emcsim_service_cache_hits not incremented (got '$hits')" >&2
    cat "$dir/metrics.txt" >&2
    exit 1
fi
echo "cached resubmit: ok ($hits cache hit(s))"

# 3. Graceful drain on SIGTERM.
kill -TERM "$srvpid"
for _ in $(seq 1 100); do
    kill -0 "$srvpid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$srvpid" 2>/dev/null; then
    echo "serve-smoke: server did not exit after SIGTERM" >&2
    kill -9 "$srvpid" 2>/dev/null || true
    exit 1
fi
wait "$srvpid" 2>/dev/null || true
grep -q "shutdown:" "$dir/serve.out" || {
    echo "serve-smoke: no shutdown summary in server output" >&2
    cat "$dir/serve.out" "$dir/serve.err" >&2 || true
    exit 1
}
echo "graceful drain: ok"
echo "serve-smoke: ok"
