#!/bin/sh
# trace_smoke.sh — end-to-end observability smoke (make trace-smoke).
#
# Runs a tiny traced workload with the debug HTTP server up, then:
#   1. validates the Chrome trace_event JSON with cmd/tracecheck,
#   2. scrapes /metrics once while the server lingers (curl when available,
#      tracecheck -metrics-url otherwise),
#   3. checks the interval counter log parses.
set -eu

GO="${GO:-go}"
dir=.smoke
rm -rf "$dir"
mkdir -p "$dir"
trap 'rm -rf "$dir"' EXIT

"$GO" build -o "$dir/emcsim" ./cmd/emcsim
"$GO" build -o "$dir/tracecheck" ./cmd/tracecheck

# A tiny workload: long enough to produce misses on both the core and EMC
# paths, short enough for CI. The linger keeps /metrics up after the run so
# the scrape below cannot race the simulation's end.
"$dir/emcsim" -bench mcf,sphinx3,soplex,libquantum -emc -n 4000 \
    -trace "$dir/trace.json" -trace-sample 1 \
    -counters "$dir/counters.json" -counters-interval 5000 \
    -http 127.0.0.1:0 -http-linger 20s \
    >"$dir/run.out" 2>"$dir/run.err" &
simpid=$!

# The bound address is printed as "debug server listening on http://ADDR ...".
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*listening on http://\([0-9.:]*\).*|\1|p' "$dir/run.out" 2>/dev/null | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "trace-smoke: debug server address never appeared" >&2
    cat "$dir/run.out" "$dir/run.err" >&2 || true
    kill "$simpid" 2>/dev/null || true
    exit 1
fi

# Wait for the trace file to be written (the run is fast; the linger is not).
ok=""
for _ in $(seq 1 200); do
    if grep -q "wrote $dir/trace.json" "$dir/run.err" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ -z "$ok" ]; then
    echo "trace-smoke: simulation never wrote the trace file" >&2
    cat "$dir/run.out" "$dir/run.err" >&2 || true
    kill "$simpid" 2>/dev/null || true
    exit 1
fi

status=0
if command -v curl >/dev/null 2>&1; then
    curl -sf "http://$addr/metrics" >"$dir/metrics.txt" || status=$?
    if [ "$status" -eq 0 ] && ! grep -q '^emcsim_' "$dir/metrics.txt"; then
        echo "trace-smoke: /metrics has no emcsim_ gauges" >&2
        status=1
    fi
    [ "$status" -eq 0 ] && echo "metrics: ok ($(grep -c '^emcsim_' "$dir/metrics.txt") gauge lines)"
    [ "$status" -eq 0 ] && "$dir/tracecheck" "$dir/trace.json" || status=1
else
    "$dir/tracecheck" -metrics-url "http://$addr/metrics" "$dir/trace.json" || status=1
fi

# The counter log must be valid JSON with at least one sample.
if [ "$status" -eq 0 ]; then
    "$dir/tracecheck" -counters "$dir/counters.json" "$dir/trace.json" >/dev/null || status=1
    echo "counters: ok"
fi

kill "$simpid" 2>/dev/null || true
wait "$simpid" 2>/dev/null || true

if [ "$status" -ne 0 ]; then
    echo "trace-smoke: FAILED" >&2
    exit 1
fi
echo "trace-smoke: ok"
