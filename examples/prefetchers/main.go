// Prefetchers contrasts what hardware prefetchers can and cannot do about
// dependent cache misses (paper Figs. 3 and 21): on a streaming workload the
// stream prefetcher covers nearly everything; on a pointer-chasing workload
// every prefetcher fails to cover the dependent misses, and the EMC
// accelerates them instead of predicting them.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(cfg emcsim.SystemConfig, wl emcsim.Workload) *emcsim.Result {
	r, err := emcsim.Run(cfg, wl)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	stream := emcsim.Workload{Name: "4xlibquantum",
		Benchmarks:   []string{"libquantum", "libquantum", "libquantum", "libquantum"},
		InstrPerCore: 15000}
	chase := emcsim.Workload{Name: "4xmcf",
		Benchmarks:   []string{"mcf", "mcf", "mcf", "mcf"},
		InstrPerCore: 15000}

	fmt.Println("=== streaming workload (libquantum x4) ===")
	base := run(emcsim.QuadCore(emcsim.PFNone, false), stream)
	for _, pf := range []emcsim.PrefetcherKind{emcsim.PFGHB, emcsim.PFStream, emcsim.PFMarkovStream} {
		r := run(emcsim.QuadCore(pf, false), stream)
		acc := 0.0
		if r.PrefetchIssued > 0 {
			acc = 100 * float64(r.PrefetchUseful) / float64(r.PrefetchIssued)
		}
		fmt.Printf("  %-14s speedup %+6.1f%%  traffic %+6.1f%%  accuracy %5.1f%%\n",
			pf,
			100*(r.AvgIPC()/base.AvgIPC()-1),
			100*(float64(r.MemTraffic())/float64(base.MemTraffic())-1),
			acc)
	}

	fmt.Println("\n=== pointer-chasing workload (mcf x4) ===")
	base = run(emcsim.QuadCore(emcsim.PFNone, false), chase)
	fmt.Printf("  dependent misses: %.0f%% of all LLC misses\n", 100*base.DependentMissFraction())
	for _, pf := range []emcsim.PrefetcherKind{emcsim.PFGHB, emcsim.PFStream, emcsim.PFMarkovStream} {
		r := run(emcsim.QuadCore(pf, false), chase)
		covered := 0.0
		if dep := r.Sys.DepMisses + r.Sys.DepCovered; dep > 0 {
			covered = 100 * float64(r.Sys.DepCovered) / float64(dep)
		}
		fmt.Printf("  %-14s covers %4.1f%% of dependent misses (paper Fig. 3: <20%% on average), traffic %+.0f%%\n",
			pf, covered,
			100*(float64(r.MemTraffic())/float64(base.MemTraffic())-1))
	}
	emc := run(emcsim.QuadCore(emcsim.PFNone, true), chase)
	fmt.Printf("  %-14s accelerates them instead: EMC serves %.1f%% of misses at %.0f%% lower latency, traffic %+.0f%%\n",
		"emc", 100*emc.EMCMissFraction(),
		100*(1-emc.EMCMissLatency()/emc.CoreMissLatency()),
		100*(float64(emc.MemTraffic())/float64(base.MemTraffic())-1))
}
