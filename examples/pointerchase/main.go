// Pointerchase demonstrates the paper's core observation on the most
// pointer-chasing workload in the suite: four copies of mcf. It measures the
// fraction of LLC misses that depend on a prior miss, the headroom from
// idealizing them (Fig. 2), and how much of that the EMC recovers — plus the
// functional-correctness invariant that the EMC computed every dependent
// address exactly as the trace recorded it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	wl := emcsim.Workload{
		Name:         "4xmcf",
		Benchmarks:   []string{"mcf", "mcf", "mcf", "mcf"},
		InstrPerCore: 20000,
	}

	base, err := emcsim.Run(emcsim.QuadCore(emcsim.PFNone, false), wl)
	if err != nil {
		log.Fatal(err)
	}

	idealCfg := emcsim.QuadCore(emcsim.PFNone, false)
	idealCfg.IdealDependentHits = true
	ideal, err := emcsim.Run(idealCfg, wl)
	if err != nil {
		log.Fatal(err)
	}

	withEMC, err := emcsim.Run(emcsim.QuadCore(emcsim.PFNone, true), wl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mcf x4: the pointer-chasing stress test (paper Figs. 2, 13)")
	fmt.Printf("\n%.0f%% of LLC misses depend on a prior LLC miss (paper: ~45%% for mcf)\n",
		100*base.DependentMissFraction())
	fmt.Printf("if every dependent miss were an LLC hit: %+.0f%% IPC (paper: +95%%)\n",
		100*(ideal.AvgIPC()/base.AvgIPC()-1))
	fmt.Printf("with the EMC: %+.1f%% IPC, dependent requests issued from the controller run %.0f%% faster\n",
		100*(withEMC.AvgIPC()/base.AvgIPC()-1),
		100*(1-withEMC.EMCMissLatency()/withEMC.CoreMissLatency()))

	// The EMC executes chains functionally: every address it computed from
	// live-in register values must equal the trace's recorded address.
	var mismatches, loads uint64
	for _, e := range withEMC.EMC {
		mismatches += e.AddrMismatches
		loads += e.LoadsExecuted
	}
	fmt.Printf("\nEMC executed %d loads; %d address mismatches (must be 0 — value-consistent traces)\n",
		loads, mismatches)
	if mismatches != 0 {
		log.Fatal("value consistency violated")
	}
}
