// Quickstart: simulate the paper's H4 workload (mcf + sphinx3 + soplex +
// libquantum) on the Table-1 quad-core, first without and then with the
// Enhanced Memory Controller, and compare what happens to the dependent
// cache misses.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	wl := emcsim.Workload{
		Name:         "H4",
		Benchmarks:   []string{"mcf", "sphinx3", "soplex", "libquantum"},
		InstrPerCore: 20000,
		Seed:         7,
	}

	baseline, err := emcsim.Run(emcsim.QuadCore(emcsim.PFNone, false), wl)
	if err != nil {
		log.Fatal(err)
	}
	withEMC, err := emcsim.Run(emcsim.QuadCore(emcsim.PFNone, true), wl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s: %v\n\n", wl.Name, wl.Benchmarks)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "with EMC")
	fmt.Printf("%-22s %12.4f %12.4f\n", "avg IPC", baseline.AvgIPC(), withEMC.AvgIPC())
	fmt.Printf("%-22s %12d %12d\n", "cycles", baseline.Cycles, withEMC.Cycles)
	fmt.Printf("%-22s %12.1f %12.1f\n", "core-miss latency", baseline.CoreMissLatency(), withEMC.CoreMissLatency())
	fmt.Printf("%-22s %12s %12.1f\n", "EMC-miss latency", "-", withEMC.EMCMissLatency())
	fmt.Printf("%-22s %12s %11.1f%%\n", "EMC share of misses", "-", 100*withEMC.EMCMissFraction())

	var chains, done uint64
	for _, c := range withEMC.Cores {
		chains += c.Stats.ChainsGenerated
	}
	for _, e := range withEMC.EMC {
		done += e.ChainsDone
	}
	fmt.Printf("\nchains: %d generated, %d executed to completion at the memory controller\n", chains, done)
	fmt.Printf("each chain carried ~%.1f uops (paper Fig. 22: under 10 on average)\n", withEMC.AvgChainLength())
	if l := withEMC.EMCMissLatency(); l > 0 {
		fmt.Printf("\nEMC-issued misses were %.0f%% faster than core-issued ones (paper Fig. 18: ~20%%)\n",
			100*(1-l/withEMC.CoreMissLatency()))
	}
}
