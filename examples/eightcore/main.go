// Eightcore scales the system up (paper §6.2, Fig. 11/14): the H5 mix
// doubled onto eight cores, first with one memory controller and then with
// two compute-capable memory controllers, including the cross-channel
// EMC-to-EMC request path.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	quad := emcsim.Workload{
		Name:         "H5",
		Benchmarks:   []string{"lbm", "mcf", "libquantum", "bwaves"},
		InstrPerCore: 8000,
	}
	wl := emcsim.EightCoreWorkload(quad)

	type cell struct {
		label string
		cfg   emcsim.SystemConfig
	}
	cells := []cell{
		{"1MC baseline", emcsim.EightCore(emcsim.PFNone, false, 1)},
		{"1MC + EMC", emcsim.EightCore(emcsim.PFNone, true, 1)},
		{"2MC baseline", emcsim.EightCore(emcsim.PFNone, false, 2)},
		{"2MC + 2 EMCs", emcsim.EightCore(emcsim.PFNone, true, 2)},
	}

	fmt.Printf("eight-core %s: %v\n\n", wl.Name, wl.Benchmarks)
	var results []*emcsim.Result
	for _, c := range cells {
		r, err := emcsim.Run(c.cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
		fmt.Printf("%-14s IPC %.4f  dramReads %-6d rowConflict %.1f%%  emcReads %-5d crossMC %d\n",
			c.label, r.AvgIPC(), r.TotalDRAMReads(), 100*r.RowConflictRate(),
			r.Sys.DRAMEMCReads, r.Sys.CrossMCRequests)
	}

	fmt.Printf("\nEMC speedup: 1MC %+.1f%%, 2MC %+.1f%%\n",
		100*(results[1].AvgIPC()/results[0].AvgIPC()-1),
		100*(results[3].AvgIPC()/results[2].AvgIPC()-1))
	if results[3].Sys.CrossMCRequests > 0 {
		fmt.Println("cross-channel dependencies were issued EMC-to-EMC without bouncing through a core (§4.4)")
	}
}
