// Sensitivity sweeps the DRAM organization (paper Fig. 20). The paper
// observes that the EMC's benefit grows with bank count in the 1- and
// 2-channel range (more parallelism for the promptly issued dependent
// requests to exploit) and persists at 4 channels; this example reproduces
// that trend on the homogeneous pointer-chasing workload.
package main

import (
	"fmt"
	"log"

	emcsim "repro"
)

func main() {
	wl := emcsim.Workload{
		Name:         "4xmcf",
		Benchmarks:   []string{"mcf", "mcf", "mcf", "mcf"},
		InstrPerCore: 12000,
	}

	type point struct{ channels, ranks int }
	sweep := []point{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 2}}

	fmt.Printf("%-8s %12s %12s %10s %12s\n", "geometry", "baseIPC", "emcIPC", "emcGain", "rowConflict")
	var base1c1r float64
	for _, p := range sweep {
		var ipc [2]float64
		var conflict float64
		for i, emcOn := range []bool{false, true} {
			cfg := emcsim.QuadCore(emcsim.PFNone, emcOn)
			cfg.Geometry.Channels = p.channels
			cfg.Geometry.Ranks = p.ranks
			cfg.Geometry.QueueSize = 64 * p.channels * p.ranks
			res, err := emcsim.Run(cfg, wl)
			if err != nil {
				log.Fatal(err)
			}
			ipc[i] = res.AvgIPC()
			if !emcOn {
				conflict = res.RowConflictRate()
			}
		}
		if base1c1r == 0 {
			base1c1r = ipc[0]
		}
		fmt.Printf("%dC%dR     %12.3f %12.3f %+9.1f%% %11.1f%%\n",
			p.channels, p.ranks,
			ipc[0]/base1c1r, ipc[1]/base1c1r,
			100*(ipc[1]/ipc[0]-1), 100*conflict)
	}
	fmt.Println("\n(IPC normalized to the 1-channel/1-rank baseline; paper Fig. 20)")
}
